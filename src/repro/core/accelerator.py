"""Accelerator assembly (Fig. 3): 20 streaming kernels + 4 SRAM banks.

One accelerator instance comprises four lanes, each with a
data-staging/control unit, a convolution unit, an accumulator unit, a
pad/pool unit and a write-to-memory unit — "4 instances of 5 different
compute units: 20 units (threads) in total" — interconnected by FIFO
queues and synchronized by a Pthreads barrier.

This module also provides the behavioural host helpers (load feature
maps / packed weights into the banks, issue instructions, read results
back) used by tests, examples and the SoC driver. A convenient
architectural property of the layout: a convolution's OFM (channel
``4g + j`` written by accumulator ``j`` to bank ``j`` at local index
``g``) lands in exactly the interleaved channel placement (channel
``c`` in bank ``c mod 4`` at local index ``c // 4``) that the next
layer's staging units expect, so no reshuffle is needed between layers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.accumulator import AccumulatorPhase, accumulator_kernel
from repro.core.burst import BurstPipeline
from repro.core.conv_unit import ConvUnitPhase, conv_unit_kernel
from repro.core.instructions import (ConvInstruction, Opcode,
                                     PadPoolInstruction)
from repro.core.packing import (PackedLayer, serialize_unit_stream,
                                unit_channels)
from repro.core.padpool import PadPoolPhase, padpool_kernel
from repro.core.sram import SramBank, make_banks
from repro.core.staging import StagingPhase, staging_kernel
from repro.core.tile import TILE, tiles_along, to_tiles
from repro.core.writeback import WritebackPhase, writeback_kernel
from repro.hls.kernel import Tick
from repro.hls.sim import Simulator


@dataclass(frozen=True)
class AcceleratorConfig:
    """Structural parameters of one accelerator instance."""

    tile: int = TILE
    lanes: int = 4
    bank_capacity: int = 1 << 16   # values per bank
    queue_depth: int = 2
    acc_queue_depth: int = 8

    @property
    def macs_per_cycle(self) -> int:
        """Peak multiplies per cycle of this instance.

        Each of the ``lanes`` convolution units applies ``lanes``
        weights (one per concurrently-computed filter) to a
        ``tile x tile`` region every cycle: 4 x 4 x 16 = 256 in the
        paper's configuration.
        """
        return self.lanes * self.lanes * self.tile * self.tile


class AcceleratorInstance:
    """One synthesized accelerator: banks, queues and 20 kernels."""

    def __init__(self, sim: Simulator, config: AcceleratorConfig | None = None,
                 name: str = "acc"):
        self.sim = sim
        self.config = config or AcceleratorConfig()
        self.name = name
        cfg = self.config
        self.banks: list[SramBank] = make_banks(
            cfg.lanes, cfg.bank_capacity, cfg.tile, prefix=f"{name}.bank")
        self.barrier = sim.barrier(f"{name}.barrier", parties=cfg.lanes)
        self.instr_qs = [sim.fifo(f"{name}.instr{u}", depth=2)
                         for u in range(cfg.lanes)]
        self.done_q = sim.fifo(f"{name}.done", depth=2 * cfg.lanes)
        self.conv_qs = [sim.fifo(f"{name}.stage{u}.conv", cfg.queue_depth)
                        for u in range(cfg.lanes)]
        self.padpool_qs = [sim.fifo(f"{name}.stage{u}.pp", cfg.queue_depth)
                           for u in range(cfg.lanes)]
        # acc_qs[u][j]: convolution unit u -> accumulator j.
        self.acc_qs = [[sim.fifo(f"{name}.conv{u}.acc{j}",
                                 cfg.acc_queue_depth)
                        for j in range(cfg.lanes)]
                       for u in range(cfg.lanes)]
        self.writeback_qs = [sim.fifo(f"{name}.wb{j}", cfg.queue_depth)
                             for j in range(cfg.lanes)]
        staging_kernels = []
        conv_kernels = []
        accum_kernels = []
        padpool_kernels = []
        writeback_kernels = []
        for u in range(cfg.lanes):
            staging_phase = StagingPhase()
            kernel = sim.add_kernel(
                f"{name}.staging{u}",
                staging_kernel(u, self.banks[u], self.instr_qs[u],
                               self.conv_qs[u], self.padpool_qs[u],
                               self.done_q, self.barrier,
                               lanes=cfg.lanes, tile=cfg.tile,
                               phase=staging_phase),
                fsm_states=180, ii=1)
            kernel.phase = staging_phase
            staging_kernels.append(kernel)
            conv_phase = ConvUnitPhase()
            kernel = sim.add_kernel(
                f"{name}.conv{u}",
                conv_unit_kernel(u, self.conv_qs[u],
                                 [self.acc_qs[u][j] for j in range(cfg.lanes)],
                                 tile=cfg.tile, phase=conv_phase),
                fsm_states=12, ii=1)
            kernel.phase = conv_phase
            conv_kernels.append(kernel)
            accum_phase = AccumulatorPhase()
            kernel = sim.add_kernel(
                f"{name}.accum{u}",
                accumulator_kernel(u,
                                   [self.acc_qs[v][u]
                                    for v in range(cfg.lanes)],
                                   self.writeback_qs[u], tile=cfg.tile,
                                   phase=accum_phase),
                fsm_states=10, ii=1)
            kernel.phase = accum_phase
            accum_kernels.append(kernel)
            padpool_phase = PadPoolPhase()
            kernel = sim.add_kernel(
                f"{name}.padpool{u}",
                padpool_kernel(u, self.padpool_qs[u], self.writeback_qs[u],
                               tile=cfg.tile, phase=padpool_phase),
                fsm_states=8, ii=1)
            kernel.phase = padpool_phase
            padpool_kernels.append(kernel)
            writeback_phase = WritebackPhase()
            kernel = sim.add_kernel(
                f"{name}.writeback{u}",
                writeback_kernel(u, self.writeback_qs[u], self.banks[u],
                                 phase=writeback_phase),
                fsm_states=4, ii=1)
            kernel.phase = writeback_phase
            writeback_kernels.append(kernel)
        #: Burst-mode detector/executor for this instance's pipelines —
        #: the MAC stream, the pad/pool chain and writeback drains
        #: (engaged only when ``sim.burst`` is set; see
        #: :mod:`repro.core.burst`).
        self.burst_pipeline = BurstPipeline(
            sim, staging_kernels, conv_kernels, accum_kernels,
            self.conv_qs, self.acc_qs, self.banks, tile=cfg.tile,
            padpool_kernels=padpool_kernels,
            writeback_kernels=writeback_kernels,
            padpool_qs=self.padpool_qs, writeback_qs=self.writeback_qs)
        sim.register_burst_pipeline(self.burst_pipeline)
        self._exec_count = 0

    # -- host-side data movement (behavioural DMA) -------------------------------

    @property
    def word_values(self) -> int:
        return self.config.tile * self.config.tile

    def load_fm(self, fm_q: np.ndarray, base_tile_addr: int
                ) -> tuple[int, int]:
        """Load a CHW integer feature map, channel-interleaved across banks.

        Channel ``c`` goes to bank ``c mod lanes`` at local index
        ``c // lanes``; each channel's tiles are stored row-major from
        ``base_tile_addr``. Returns the tile-grid dimensions (TY, TX).
        """
        cfg = self.config
        tiles = to_tiles(np.asarray(fm_q, dtype=np.int16), cfg.tile)
        channels, tiles_y, tiles_x = tiles.shape[:3]
        per_channel = tiles_y * tiles_x
        for c in range(channels):
            bank = self.banks[c % cfg.lanes]
            local = c // cfg.lanes
            start = (base_tile_addr + local * per_channel) * self.word_values
            bank.dma_write(start, tiles[c].reshape(-1))
        return tiles_y, tiles_x

    def read_fm(self, base_tile_addr: int, channels: int, height: int,
                width: int) -> np.ndarray:
        """Read back a CHW feature map stored by :meth:`load_fm` layout."""
        cfg = self.config
        tiles_y = tiles_along(height, cfg.tile)
        tiles_x = tiles_along(width, cfg.tile)
        per_channel = tiles_y * tiles_x
        fm = np.zeros((channels, tiles_y * cfg.tile, tiles_x * cfg.tile),
                      dtype=np.int16)
        for c in range(channels):
            bank = self.banks[c % cfg.lanes]
            local = c // cfg.lanes
            start = (base_tile_addr + local * per_channel) * self.word_values
            flat = bank.dma_read(start, per_channel * self.word_values)
            shaped = flat.reshape(tiles_y, tiles_x, cfg.tile, cfg.tile)
            fm[c] = shaped.transpose(0, 2, 1, 3).reshape(
                tiles_y * cfg.tile, tiles_x * cfg.tile)
        return fm[:, :height, :width]

    def load_packed_weights(self, packed: PackedLayer, base_value_addr: int,
                            compact: bool = False) -> list[int]:
        """Write each unit's packed stream into its bank; return lengths."""
        lengths = []
        for unit in range(self.config.lanes):
            stream = serialize_unit_stream(packed, unit,
                                           lanes=self.config.lanes,
                                           group_size=self.config.lanes,
                                           compact=compact)
            self.banks[unit].dma_write(base_value_addr, stream)
            lengths.append(int(stream.size))
        return lengths

    # -- instruction execution --------------------------------------------------

    def execute(self, per_unit_instrs: list, max_cycles: int = 10_000_000,
                expected_tiles: int | None = None) -> int:
        """Issue one instruction per staging unit and run to completion.

        A transient "ARM host" kernel writes the instructions into the
        per-unit queues, collects the done tokens and — when
        ``expected_tiles`` is given — polls the banks' write counters
        (the status-register analogue) until every OFM tile has landed,
        covering the accumulator/write-back drain after the staging
        units finish. Returns elapsed cycles.
        """
        cfg = self.config
        if len(per_unit_instrs) != cfg.lanes:
            raise ValueError(
                f"need {cfg.lanes} instructions (None allowed), got "
                f"{len(per_unit_instrs)}")
        finished: list[bool] = []
        expected = sum(1 for instr in per_unit_instrs if instr is not None)
        if expected == 0:
            return 0
        instance = self
        write_target = None
        if expected_tiles is not None:
            write_target = expected_tiles + sum(
                bank.stats.tile_writes for bank in self.banks)

        def host_body():
            for unit, instr in enumerate(per_unit_instrs):
                if instr is not None:
                    yield instance.instr_qs[unit].write(instr)
            yield Tick(1)
            for _ in range(expected):
                yield instance.done_q.read()
            if write_target is not None:
                while sum(bank.stats.tile_writes
                          for bank in instance.banks) < write_target:
                    yield Tick(1)
            finished.append(True)

        self._exec_count += 1
        self.sim.add_kernel(f"{self.name}.host{self._exec_count}",
                            host_body())
        start = self.sim.now
        self.sim.run(max_cycles=max_cycles, until=lambda: bool(finished))
        return self.sim.now - start

    def hls_report(self):
        """Convenience: synthesis-style report of this instance's design."""
        from repro.hls.report import HlsReport
        return HlsReport.from_simulator(self.sim)


# -- single-layer convenience drivers (tests, examples, validation) ----------------


@dataclass(frozen=True)
class ConvSetup:
    """A convolution staged into an instance's banks, ready to issue."""

    instance: AcceleratorInstance
    instructions: list
    ofm_base: int
    out_channels: int
    out_h: int
    out_w: int
    expected_tiles: int

    def read_ofm(self) -> np.ndarray:
        return self.instance.read_fm(self.ofm_base, self.out_channels,
                                     self.out_h, self.out_w)


def prepare_conv(instance: AcceleratorInstance, ifm_q: np.ndarray,
                 packed: PackedLayer, biases: np.ndarray | None = None,
                 shift: int = 0, apply_relu: bool = False,
                 compact_weights: bool = False) -> ConvSetup:
    """Stage one convolution: load IFM + weights, build instructions.

    Separated from execution so multiple instances can be staged and
    then run *concurrently* in one simulator (the 512-opt pattern).
    ``compact_weights`` selects the nibble-packed stream format.
    """
    cfg = instance.config
    channels, height, width = ifm_q.shape
    if channels != packed.in_channels:
        raise ValueError(
            f"IFM has {channels} channels, packed weights expect "
            f"{packed.in_channels}")
    kernel = packed.kernel
    out_h, out_w = height - kernel + 1, width - kernel + 1
    tiles_y, tiles_x = instance.load_fm(ifm_q, base_tile_addr=0)
    out_ty = tiles_along(out_h, cfg.tile)
    out_tx = tiles_along(out_w, cfg.tile)
    groups = -(-packed.out_channels // cfg.lanes)
    max_local = -(-channels // cfg.lanes)
    ofm_base = max_local * tiles_y * tiles_x
    weight_base = (ofm_base + groups * out_ty * out_tx) * instance.word_values
    lengths = instance.load_packed_weights(packed, weight_base,
                                           compact=compact_weights)
    bias_tuple = ()
    if biases is not None:
        bias_tuple = tuple(int(b) for b in np.asarray(biases).reshape(-1))
    instrs = []
    for unit in range(cfg.lanes):
        locals_here = len(unit_channels(channels, unit, cfg.lanes))
        instrs.append(ConvInstruction(
            instr_id=instance._exec_count + 1,
            ifm_base=0, ifm_tiles_y=tiles_y, ifm_tiles_x=tiles_x,
            local_channels=locals_here,
            ofm_base=ofm_base, ofm_tiles_y=out_ty, ofm_tiles_x=out_tx,
            out_channels=packed.out_channels,
            weight_base=weight_base, weight_bytes=lengths[unit],
            shift=shift, apply_relu=apply_relu,
            biases=bias_tuple if unit == 0 else (),
            compact_weights=compact_weights))
    return ConvSetup(instance=instance, instructions=instrs,
                     ofm_base=ofm_base, out_channels=packed.out_channels,
                     out_h=out_h, out_w=out_w,
                     expected_tiles=groups * out_ty * out_tx * cfg.lanes)


def execute_conv(instance: AcceleratorInstance, ifm_q: np.ndarray,
                 packed: PackedLayer, biases: np.ndarray | None = None,
                 shift: int = 0, apply_relu: bool = False,
                 compact_weights: bool = False) -> tuple[np.ndarray, int]:
    """Run one full convolution layer (pre-padded input) on the instance.

    ``ifm_q`` is the quantized CHW input (valid convolution — apply the
    padding instruction first, as the real system does). Returns the
    quantized OFM and the elapsed cycles.
    """
    setup = prepare_conv(instance, ifm_q, packed, biases=biases,
                         shift=shift, apply_relu=apply_relu,
                         compact_weights=compact_weights)
    cycles = instance.execute(setup.instructions,
                              expected_tiles=setup.expected_tiles)
    return setup.read_ofm(), cycles


def execute_concurrent(setups: list[ConvSetup],
                       max_cycles: int = 10_000_000) -> int:
    """Run staged convolutions on several instances *simultaneously*.

    All instances must share one simulator; a single host kernel issues
    every instruction, then waits for all done tokens and all OFM tile
    writes — modelling the 512-opt system where two accelerators work
    on separate stripes concurrently. Returns wall cycles.
    """
    if not setups:
        return 0
    sim = setups[0].instance.sim
    if any(s.instance.sim is not sim for s in setups):
        raise ValueError("concurrent instances must share one simulator")
    finished: list[bool] = []
    expected_done = sum(
        sum(1 for instr in s.instructions if instr is not None)
        for s in setups)
    write_targets = [
        s.expected_tiles + sum(b.stats.tile_writes
                               for b in s.instance.banks)
        for s in setups]

    def host_body():
        for s in setups:
            for unit, instr in enumerate(s.instructions):
                if instr is not None:
                    yield s.instance.instr_qs[unit].write(instr)
        yield Tick(1)
        remaining = {id(s): target
                     for s, target in zip(setups, write_targets)}
        collected = 0
        while collected < expected_done:
            for s in setups:
                if s.instance.done_q.can_pop(sim.now):
                    yield s.instance.done_q.read()
                    collected += 1
            yield Tick(1)
        while any(sum(b.stats.tile_writes for b in s.instance.banks)
                  < remaining[id(s)] for s in setups):
            yield Tick(1)
        finished.append(True)

    sim.add_kernel(f"concurrent-host-{sim.now}", host_body())
    start = sim.now
    sim.run(max_cycles=max_cycles, until=lambda: bool(finished))
    return sim.now - start


def execute_padpool(instance: AcceleratorInstance, ifm_q: np.ndarray,
                    opcode: Opcode, pad: int = 0, win: int = 2,
                    stride: int = 2) -> tuple[np.ndarray, int]:
    """Run one padding or max-pooling layer on the instance."""
    cfg = instance.config
    channels, height, width = ifm_q.shape
    if opcode is Opcode.PAD:
        out_h, out_w = height + 2 * pad, width + 2 * pad
    elif opcode is Opcode.POOL:
        out_h = (height - win) // stride + 1
        out_w = (width - win) // stride + 1
    else:
        raise ValueError(f"execute_padpool cannot run {opcode}")
    tiles_y, tiles_x = instance.load_fm(ifm_q, base_tile_addr=0)
    out_ty = tiles_along(out_h, cfg.tile)
    out_tx = tiles_along(out_w, cfg.tile)
    max_local = -(-channels // cfg.lanes)
    ofm_base = max_local * tiles_y * tiles_x
    instrs = []
    for unit in range(cfg.lanes):
        locals_here = len(unit_channels(channels, unit, cfg.lanes))
        instrs.append(PadPoolInstruction(
            instr_id=instance._exec_count + 1, opcode=opcode,
            ifm_base=0, ifm_tiles_y=tiles_y, ifm_tiles_x=tiles_x,
            local_channels=locals_here,
            ofm_base=ofm_base, ofm_tiles_y=out_ty, ofm_tiles_x=out_tx,
            pad=pad, win=win, stride=stride,
            ifm_height=height, ifm_width=width))
    cycles = instance.execute(instrs,
                              expected_tiles=channels * out_ty * out_tx)
    ofm = instance.read_fm(ofm_base, channels, out_h, out_w)
    return ofm, cycles
