"""Convolution units (Fig. 4b): data steering + 64 multiplies per cycle.

Each convolution unit receives, every cycle, four packed weights (one
per concurrently-computed filter) with their intra-tile offsets, plus —
latched at channel boundaries — the 8x8 IFM region assembled from four
contiguous tiles. A weight at intra-tile offset ``(oy, ox)`` multiplies
the 4x4 region ``region[oy:oy+4, ox:ox+4]`` (the dotted rectangle of
Fig. 4a), producing 16 products that stream to the filter's
accumulator unit. A zero weight is a pipeline bubble: the slot is
forwarded empty so the accumulators stay in lock-step.
"""

from __future__ import annotations

import numpy as np

from repro.hls.fifo import PthreadFifo
from repro.hls.kernel import Tick


class ConvUnitPhase:
    """Published phase state of one convolution unit (``Kernel.phase``).

    ``region`` is the latched 8x8 IFM region (channel-boundary state the
    burst engine must read and update); ``streaming`` is True exactly
    while the generator is parked at the MAC-branch ``Tick(1)`` with all
    four product writes completed — the steady-state posture the burst
    engine (:mod:`repro.core.burst`) may extend without resuming the
    generator.
    """

    __slots__ = ("region", "streaming")

    def __init__(self):
        self.region: np.ndarray | None = None
        self.streaming = False


def conv_unit_kernel(unit: int, in_q: PthreadFifo,
                     acc_qs: list[PthreadFifo], tile: int = 4,
                     phase: ConvUnitPhase | None = None):
    """Generator body of one convolution unit.

    ``acc_qs[j]`` is this unit's queue toward accumulator ``j``; with
    four filters per group, the unit performs up to
    ``4 * tile * tile = 64`` multiplications per cycle.
    """
    if phase is None:
        phase = ConvUnitPhase()
    while True:
        msg = yield in_q.read()
        kind = msg[0]
        if kind == "start":
            meta = msg[1]
            for acc_q in acc_qs:
                yield acc_q.write(("start", unit, meta))
            yield Tick(1)
        elif kind == "mac":
            _, new_region, weights, offsets = msg
            if new_region is not None:
                phase.region = new_region
            region = phase.region
            for j, acc_q in enumerate(acc_qs):
                weight = weights[j]
                if weight == 0:
                    products = None  # bubble: zero weight skipped
                else:
                    if region is None:
                        raise RuntimeError(
                            f"conv unit {unit}: weight before region load")
                    oy, ox = divmod(offsets[j], tile)
                    window = region[oy:oy + tile, ox:ox + tile]
                    products = window * int(weight)
                yield acc_q.write(("mac", unit, products))
            phase.streaming = True
            yield Tick(1)
            phase.streaming = False
        elif kind == "finish":
            for acc_q in acc_qs:
                yield acc_q.write(("finish", unit))
            yield Tick(1)
        else:
            raise TypeError(f"conv unit {unit}: bad message {kind!r}")
