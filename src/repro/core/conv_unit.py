"""Convolution units (Fig. 4b): data steering + 64 multiplies per cycle.

Each convolution unit receives, every cycle, four packed weights (one
per concurrently-computed filter) with their intra-tile offsets, plus —
latched at channel boundaries — the 8x8 IFM region assembled from four
contiguous tiles. A weight at intra-tile offset ``(oy, ox)`` multiplies
the 4x4 region ``region[oy:oy+4, ox:ox+4]`` (the dotted rectangle of
Fig. 4a), producing 16 products that stream to the filter's
accumulator unit. A zero weight is a pipeline bubble: the slot is
forwarded empty so the accumulators stay in lock-step.
"""

from __future__ import annotations

import numpy as np

from repro.hls.fifo import PthreadFifo
from repro.hls.kernel import Tick


def conv_unit_kernel(unit: int, in_q: PthreadFifo,
                     acc_qs: list[PthreadFifo], tile: int = 4):
    """Generator body of one convolution unit.

    ``acc_qs[j]`` is this unit's queue toward accumulator ``j``; with
    four filters per group, the unit performs up to
    ``4 * tile * tile = 64`` multiplications per cycle.
    """
    region: np.ndarray | None = None
    while True:
        msg = yield in_q.read()
        kind = msg[0]
        if kind == "start":
            meta = msg[1]
            for acc_q in acc_qs:
                yield acc_q.write(("start", unit, meta))
            yield Tick(1)
        elif kind == "mac":
            _, new_region, weights, offsets = msg
            if new_region is not None:
                region = new_region
            for j, acc_q in enumerate(acc_qs):
                weight = weights[j]
                if weight == 0:
                    products = None  # bubble: zero weight skipped
                else:
                    if region is None:
                        raise RuntimeError(
                            f"conv unit {unit}: weight before region load")
                    oy, ox = divmod(offsets[j], tile)
                    window = region[oy:oy + tile, ox:ox + tile]
                    products = window * int(weight)
                yield acc_q.write(("mac", unit, products))
            yield Tick(1)
        elif kind == "finish":
            for acc_q in acc_qs:
                yield acc_q.write(("finish", unit))
            yield Tick(1)
        else:
            raise TypeError(f"conv unit {unit}: bad message {kind!r}")
