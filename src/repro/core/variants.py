"""The four evaluated architecture variants (Section V).

"A unique advantage of HLS is that one can synthesize multiple
architecture variants from software and constraint changes alone."

=============  ==========  =========  ============  ======
label          MACs/cycle  instances  optimized     clock
=============  ==========  =========  ============  ======
``16-unopt``   16          1          no            55 MHz
``256-unopt``  256         1          no            55 MHz
``256-opt``    256         1          yes           150 MHz
``512-opt``    512         2          yes           120 MHz
=============  ==========  =========  ============  ======

The 16-unopt variant has a single convolution sub-module computing one
OFM tile at a time — no synchronization among control units, which is
what makes it the baseline for judging HLS hardware quality. The
512-opt variant instantiates the Fig. 3 accelerator twice, each
instance working on separate stripes; its clock is congestion-limited
(routing failed above 120 MHz).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hls.constraints import HlsConstraints


@dataclass(frozen=True)
class AcceleratorVariant:
    """One synthesizable configuration of the accelerator."""

    name: str
    macs_per_cycle: int       # across all instances
    instances: int
    lanes: int                # staging/conv/acc units per instance
    performance_optimized: bool
    target_clock_mhz: float   # constraint handed to HLS/RTL synthesis
    clock_mhz: float          # achieved clock (paper, Section V)

    @property
    def macs_per_instance(self) -> int:
        return self.macs_per_cycle // self.instances

    @property
    def peak_mac_rate(self) -> float:
        """Peak MACs per second."""
        return self.macs_per_cycle * self.clock_mhz * 1e6

    @property
    def peak_gops(self) -> float:
        """Paper GOPS convention: peak MAC-ops/s in units of 1e9."""
        return self.peak_mac_rate / 1e9

    @property
    def constraints(self) -> HlsConstraints:
        return HlsConstraints(
            clock_period_ns=1000.0 / self.target_clock_mhz,
            performance_optimized=self.performance_optimized)

    @property
    def synchronized(self) -> bool:
        """Whether multiple control units must barrier (all but 16-unopt)."""
        return self.lanes > 1


def custom_variant(lanes: int, instances: int, target_mhz: float,
                   clock_mhz: float = 0.0, tile: int = 4,
                   performance_optimized: bool = True,
                   name: str | None = None) -> AcceleratorVariant:
    """An off-catalogue variant for design-space exploration.

    The paper's point: new architectures are software/constraint
    changes, not new RTL.  ``macs_per_cycle`` follows the structural
    rule of :class:`repro.core.accelerator.AcceleratorConfig` — each of
    the ``lanes`` convolution units applies one weight per
    concurrently-computed OFM (group size = lanes) to a
    ``tile x tile`` region every cycle.  ``clock_mhz`` is usually left
    0.0 until the area model and the congestion model have sized the
    achieved clock (see :func:`repro.hls.constraints.achieved_fmax_mhz`).
    """
    if lanes < 1 or instances < 1:
        raise ValueError(
            f"lanes and instances must be >= 1, got {lanes}/{instances}")
    group_size = lanes  # one concurrently-computed OFM per lane
    macs = instances * lanes * group_size * tile * tile
    return AcceleratorVariant(
        name=name or f"L{lanes}xI{instances}t{tile}@{target_mhz:.0f}",
        macs_per_cycle=macs, instances=instances, lanes=lanes,
        performance_optimized=performance_optimized,
        target_clock_mhz=target_mhz, clock_mhz=clock_mhz)


VARIANT_16_UNOPT = AcceleratorVariant(
    name="16-unopt", macs_per_cycle=16, instances=1, lanes=1,
    performance_optimized=False, target_clock_mhz=55.0, clock_mhz=55.0)

VARIANT_256_UNOPT = AcceleratorVariant(
    name="256-unopt", macs_per_cycle=256, instances=1, lanes=4,
    performance_optimized=False, target_clock_mhz=55.0, clock_mhz=55.0)

VARIANT_256_OPT = AcceleratorVariant(
    name="256-opt", macs_per_cycle=256, instances=1, lanes=4,
    performance_optimized=True, target_clock_mhz=150.0, clock_mhz=150.0)

VARIANT_512_OPT = AcceleratorVariant(
    name="512-opt", macs_per_cycle=512, instances=2, lanes=4,
    performance_optimized=True, target_clock_mhz=150.0, clock_mhz=120.0)

#: All four variants in the paper's order.
ALL_VARIANTS: list[AcceleratorVariant] = [
    VARIANT_16_UNOPT, VARIANT_256_UNOPT, VARIANT_256_OPT, VARIANT_512_OPT,
]


def variant_by_name(name: str) -> AcceleratorVariant:
    """Look up a variant by its paper label (e.g. ``"512-opt"``)."""
    for variant in ALL_VARIANTS:
        if variant.name == name:
            return variant
    raise KeyError(f"unknown variant {name!r}; "
                   f"choose from {[v.name for v in ALL_VARIANTS]}")
