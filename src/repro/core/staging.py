"""Data-staging/control units (Fig. 3, one per lane).

Each staging unit owns one SRAM bank holding a quarter of the IFM
channels (channel ``c`` lives in bank ``c mod 4``) plus its slice of
the packed weights. For a convolution instruction it iterates OFM
groups, tile positions and local channels, injecting IFM regions and
packed weights into its convolution unit at one weight-group per
cycle; for padding/pooling it stages 4-tile windows into the pad/pool
unit.

Cycle accounting (the quantities Figs. 7/8 are built from):

* **weight load** — per OFM group, the unit streams its packed bytes
  from the bank into scratchpad at one 16-byte word per cycle
  (port A). This is the "unpacking weights and offsets" overhead that
  grows for weight-heavy deep layers.
* **prologue** — 4 cycles per tile position to preload the first
  channel's four IFM tiles.
* **steady state** — each subsequent channel costs
  ``max(4, max nnz over the 4 concurrent filters)`` cycles: at least
  four because the next channel's four IFM tiles share the single read
  port; bubbles appear when the four filters' non-zero counts differ
  (Section III-B1). A channel whose four filters are all zero is
  skipped entirely.
* **barrier** — all four staging units synchronize per tile position.

The paper notes the original monolithic controller synthesized to a
huge FSM and was split into one function for convolution and one for
padding/pooling (Section IV-A); `_run_conv` and `_run_padpool` mirror
that split.
"""

from __future__ import annotations

import numpy as np

from repro.core.instructions import (ConvInstruction, Opcode,
                                     PadPoolInstruction, PositionMeta)
from repro.core.packing import PackedEntry
from repro.core.sram import SramBank
from repro.hls.barrier import Barrier
from repro.hls.fifo import PthreadFifo
from repro.hls.kernel import Tick
from repro.quant.signmag import decode

#: Minimum cycles spent per (channel, weight tile): four IFM tiles must
#: be preloaded through the single SRAM read port (Section III-B1),
#: bounding zero-skip gains at (16-4)/16 = 75% for full weight tiles.
MIN_CYCLES_PER_WEIGHT_TILE = 4


def staging_kernel(unit: int, bank: SramBank, instr_q: PthreadFifo,
                   conv_q: PthreadFifo, padpool_q: PthreadFifo,
                   done_q: PthreadFifo, barrier: Barrier,
                   lanes: int = 4, tile: int = 4):
    """Generator body of one data-staging/control unit."""
    while True:
        instr = yield instr_q.read()
        yield Tick(1)  # instruction decode
        if isinstance(instr, ConvInstruction):
            yield from _run_conv(unit, bank, instr, conv_q, barrier,
                                 lanes, tile)
        elif isinstance(instr, PadPoolInstruction):
            yield from _run_padpool(unit, bank, instr, padpool_q, tile)
        else:
            raise TypeError(f"staging unit {unit}: bad instruction {instr!r}")
        yield done_q.write(("done", unit, instr.instr_id))
        yield Tick(1)


# -- convolution FSM ------------------------------------------------------------


def _run_conv(unit: int, bank: SramBank, instr: ConvInstruction,
              conv_q: PthreadFifo, barrier: Barrier, lanes: int, tile: int):
    group_size = lanes
    groups = -(-instr.out_channels // group_size)
    stream_addr = instr.weight_base
    for g in range(groups):
        group_weights, consumed = _load_group_weights(
            bank, stream_addr, instr.local_channels, group_size,
            instr.compact_weights, tile=tile)
        stream_addr += consumed
        # Streaming the packed bytes into scratchpad occupies port A.
        yield Tick(max(1, bank.stream_cycles(consumed)))
        meta_biases = None
        if instr.biases:
            lo = g * group_size
            quad = [0, 0, 0, 0]
            for j in range(group_size):
                if lo + j < instr.out_channels:
                    quad[j] = int(instr.biases[lo + j])
            meta_biases = tuple(quad)
        for py in range(instr.ofm_tiles_y):
            for px in range(instr.ofm_tiles_x):
                meta = None
                if unit == 0:
                    addr = instr.ofm_base + (
                        (g * instr.ofm_tiles_y + py) * instr.ofm_tiles_x + px)
                    meta = PositionMeta(
                        ofm_addr=addr,
                        biases=meta_biases or (0, 0, 0, 0),
                        shift=instr.shift,
                        apply_relu=instr.apply_relu,
                    )
                yield conv_q.write(("start", meta))
                # Prologue: preload the first channel's four IFM tiles.
                yield Tick(MIN_CYCLES_PER_WEIGHT_TILE)
                for lc in range(instr.local_channels):
                    entry_lists = group_weights[lc]
                    longest = max(len(lst) for lst in entry_lists)
                    if longest == 0:
                        continue  # all four filters zero: skip channel
                    region = _load_region(bank, instr, lc, py, px, tile)
                    steps = max(MIN_CYCLES_PER_WEIGHT_TILE, longest)
                    for k in range(steps):
                        weights4 = tuple(
                            lst[k].weight if k < len(lst) else 0
                            for lst in entry_lists)
                        offsets4 = tuple(
                            lst[k].offset if k < len(lst) else 0
                            for lst in entry_lists)
                        payload_region = region if k == 0 else None
                        yield conv_q.write(
                            ("mac", payload_region, weights4, offsets4))
                        yield Tick(1)
                yield conv_q.write(("finish",))
                yield barrier.wait()


def _load_group_weights(bank: SramBank, stream_addr: int, local_channels: int,
                        group_size: int, compact: bool = False,
                        tile: int = 4
                        ) -> tuple[list[list[list[PackedEntry]]], int]:
    """Parse one group's packed weights out of the bank stream.

    Returns ``(weights, bytes_consumed)`` where ``weights[lc][j]`` is
    the entry list for local channel ``lc``, filter-in-group ``j``.
    Supports both packed formats (see
    :func:`repro.core.packing.serialize_unit_stream`).
    """
    weights: list[list[list[PackedEntry]]] = []
    pos = stream_addr
    max_count = tile * tile  # a weight tile's entry capacity
    for _ in range(local_channels):
        per_filter: list[list[PackedEntry]] = []
        for _ in range(group_size):
            count = int(bank.read_stream(pos, 1)[0])
            if not 0 <= count <= max_count:
                raise ValueError(
                    f"corrupt packed stream at {pos}: count byte {count} "
                    f"outside [0, {max_count}]")
            pos += 1
            entries: list[PackedEntry] = []
            if count and compact:
                offset_bytes = (count + 1) // 2
                raw = bank.read_stream(pos, offset_bytes + count)
                pos += offset_bytes + count
                offsets = []
                for i in range(offset_bytes):
                    byte = int(raw[i])
                    offsets.append(byte & 0xF)
                    offsets.append((byte >> 4) & 0xF)
                for i in range(count):
                    entries.append(PackedEntry(
                        offsets[i], decode(int(raw[offset_bytes + i]))))
            elif count:
                raw = bank.read_stream(pos, 2 * count)
                pos += 2 * count
                for i in range(count):
                    entries.append(PackedEntry(int(raw[2 * i]),
                                               decode(int(raw[2 * i + 1]))))
            per_filter.append(entries)
        weights.append(per_filter)
    return weights, pos - stream_addr


def _load_region(bank: SramBank, instr: ConvInstruction, lc: int,
                 py: int, px: int, tile: int) -> np.ndarray:
    """Assemble the 2x2-tile (8x8) IFM region anchored at tile (py, px).

    Tiles outside the stripe's tile grid read as zero (they are either
    alignment padding or past the feature map edge).
    """
    region = np.zeros((2 * tile, 2 * tile), dtype=np.int64)
    for dy in range(2):
        for dx in range(2):
            ty, tx = py + dy, px + dx
            if ty >= instr.ifm_tiles_y or tx >= instr.ifm_tiles_x:
                continue
            addr = instr.ifm_base + (
                (lc * instr.ifm_tiles_y + ty) * instr.ifm_tiles_x + tx)
            values = bank.read_tile(addr).reshape(tile, tile)
            region[dy * tile:(dy + 1) * tile,
                   dx * tile:(dx + 1) * tile] = values
    return region


# -- padding / max-pooling FSM ----------------------------------------------------


def _run_padpool(unit: int, bank: SramBank, instr: PadPoolInstruction,
                 padpool_q: PthreadFifo, tile: int):
    del unit  # lanes operate independently; kept for symmetry/debugging
    for lc in range(instr.local_channels):
        for ty in range(instr.ofm_tiles_y):
            for tx in range(instr.ofm_tiles_x):
                if instr.opcode is Opcode.PAD:
                    src_y = ty * tile - instr.pad
                    src_x = tx * tile - instr.pad
                    win, stride = 1, 1
                else:
                    src_y = ty * tile * instr.stride
                    src_x = tx * tile * instr.stride
                    win, stride = instr.win, instr.stride
                t0y, off_y = divmod(src_y, tile)
                t0x, off_x = divmod(src_x, tile)
                region = _load_padpool_region(bank, instr, lc, t0y, t0x, tile)
                # One cycle ticked per tile fetched (single read port).
                yield Tick(4)
                addr = instr.ofm_base + (
                    (lc * instr.ofm_tiles_y + ty) * instr.ofm_tiles_x + tx)
                yield padpool_q.write(
                    (region, off_y, off_x, win, stride, addr))


def _load_padpool_region(bank: SramBank, instr: PadPoolInstruction, lc: int,
                         t0y: int, t0x: int, tile: int) -> np.ndarray:
    """2x2-tile window anchored at (t0y, t0x); out-of-range tiles are zero.

    Values beyond the IFM's true extent (``ifm_height``/``ifm_width``,
    the Fig. 3 "IFM Dim" field) are masked to zero: tiles are stored
    whole, so a producing instruction leaves garbage in the dead
    positions of edge tiles, and padding would otherwise shift that
    garbage into valid output positions.
    """
    region = np.zeros((2 * tile, 2 * tile), dtype=np.int64)
    height = instr.ifm_height or instr.ifm_tiles_y * tile
    width = instr.ifm_width or instr.ifm_tiles_x * tile
    for dy in range(2):
        for dx in range(2):
            ty, tx = t0y + dy, t0x + dx
            if not (0 <= ty < instr.ifm_tiles_y
                    and 0 <= tx < instr.ifm_tiles_x):
                continue
            addr = instr.ifm_base + (
                (lc * instr.ifm_tiles_y + ty) * instr.ifm_tiles_x + tx)
            values = bank.read_tile(addr).reshape(tile, tile)
            valid_rows = max(0, min(tile, height - ty * tile))
            valid_cols = max(0, min(tile, width - tx * tile))
            if valid_rows < tile or valid_cols < tile:
                masked = np.zeros((tile, tile), dtype=values.dtype)
                masked[:valid_rows, :valid_cols] = \
                    values[:valid_rows, :valid_cols]
                values = masked
            region[dy * tile:(dy + 1) * tile,
                   dx * tile:(dx + 1) * tile] = values
    return region
