"""Data-staging/control units (Fig. 3, one per lane).

Each staging unit owns one SRAM bank holding a quarter of the IFM
channels (channel ``c`` lives in bank ``c mod 4``) plus its slice of
the packed weights. For a convolution instruction it iterates OFM
groups, tile positions and local channels, injecting IFM regions and
packed weights into its convolution unit at one weight-group per
cycle; for padding/pooling it stages 4-tile windows into the pad/pool
unit.

Cycle accounting (the quantities Figs. 7/8 are built from):

* **weight load** — per OFM group, the unit streams its packed bytes
  from the bank into scratchpad at one 16-byte word per cycle
  (port A). This is the "unpacking weights and offsets" overhead that
  grows for weight-heavy deep layers.
* **prologue** — 4 cycles per tile position to preload the first
  channel's four IFM tiles.
* **steady state** — each subsequent channel costs
  ``max(4, max nnz over the 4 concurrent filters)`` cycles: at least
  four because the next channel's four IFM tiles share the single read
  port; bubbles appear when the four filters' non-zero counts differ
  (Section III-B1). A channel whose four filters are all zero is
  skipped entirely.
* **barrier** — all four staging units synchronize per tile position.

The paper notes the original monolithic controller synthesized to a
huge FSM and was split into one function for convolution and one for
padding/pooling (Section IV-A); `_run_conv` and `_run_padpool` mirror
that split.
"""

from __future__ import annotations

import numpy as np

from repro.core.instructions import (ConvInstruction, Opcode,
                                     PadPoolInstruction, PositionMeta)
from repro.core.packing import PackedEntry
from repro.core.sram import SramBank
from repro.hls.barrier import Barrier
from repro.hls.fifo import PthreadFifo
from repro.hls.kernel import Tick
from repro.obs.cache import KeyedCache
from repro.quant.signmag import decode

#: Parsed-schedule memo: a group's MAC-stream schedule is a pure
#: function of its packed bytes, so re-running the same layer (another
#: execution mode, another inference, a differential pair) skips the
#: Python-side parse entirely.  Keyed on the raw byte content, so a
#: hit is exact by construction.  Cached schedules are array-primary
#: (a few KB per group), so a deep network's full working set fits.
_SCHEDULE_CACHE = KeyedCache("staging_schedule", maxsize=4096)

#: Minimum cycles spent per (channel, weight tile): four IFM tiles must
#: be preloaded through the single SRAM read port (Section III-B1),
#: bounding zero-skip gains at (16-4)/16 = 75% for full weight tiles.
MIN_CYCLES_PER_WEIGHT_TILE = 4


class _StreamSegment:
    """One channel's slice of a group's MAC stream (``steps`` messages).

    The per-``k`` weight/offset quads depend only on the group's packed
    weights, so they are built once per group and reused across every
    tile position; only the IFM region differs per position.  The quads
    live in two representations: ``(steps, 4)`` int64 arrays (the burst
    engine's native form) and tuple-of-tuples (the scalar generator's
    message payloads).  Whichever the constructor received is primary;
    the other materializes lazily on first use, so a mostly-bursted run
    never builds the tuples and a pure-scalar run never builds the
    arrays.
    """

    __slots__ = ("lc", "steps", "_weights", "_offsets", "_arrays")

    def __init__(self, lc: int, steps: int, entry_lists, tile: int):
        self.lc = lc
        self.steps = steps
        self._weights = tuple(
            tuple(lst[k].weight if k < len(lst) else 0 for lst in entry_lists)
            for k in range(steps))
        self._offsets = tuple(
            tuple(lst[k].offset if k < len(lst) else 0 for lst in entry_lists)
            for k in range(steps))
        self._arrays = None

    @classmethod
    def from_arrays(cls, lc: int, steps: int, weights: np.ndarray,
                    offsets: np.ndarray) -> "_StreamSegment":
        """Array-primary construction (vectorized parse path)."""
        segment = cls.__new__(cls)
        segment.lc = lc
        segment.steps = steps
        segment._weights = None
        segment._offsets = None
        segment._arrays = (weights, offsets)
        return segment

    @property
    def weights(self):
        if self._weights is None:
            self._weights = tuple(
                tuple(int(w) for w in row) for row in self._arrays[0])
        return self._weights

    @property
    def offsets(self):
        if self._offsets is None:
            self._offsets = tuple(
                tuple(int(o) for o in row) for row in self._arrays[1])
        return self._offsets

    def message_quads(self, k: int) -> tuple[tuple, tuple]:
        """``(weights, offsets)`` tuples of message ``k``.

        Prefers already-materialized tuples; otherwise converts the one
        array row — used for burst-window tail messages so a replayed
        segment never materializes its full tuple form.
        """
        if self._weights is not None:
            return self._weights[k], self._offsets[k]
        w_arr, o_arr = self._arrays
        return (tuple(int(w) for w in w_arr[k]),
                tuple(int(o) for o in o_arr[k]))

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(weights, offsets)`` as ``(steps, 4)`` arrays (lazy, cached).

        Built on first burst use only, so reference-stepper runs never
        pay for them.
        """
        if self._arrays is None:
            self._arrays = (np.array(self._weights, dtype=np.int64),
                            np.array(self._offsets, dtype=np.int64))
        return self._arrays


class StagingSchedule:
    """Precomputed MAC-stream schedule of one OFM group (all channels)."""

    __slots__ = ("segments", "total_messages")

    def __init__(self, group_weights=None, tile: int = 4, segments=None):
        if segments is not None:
            self.segments = list(segments)
        else:
            self.segments = []
            for lc, entry_lists in enumerate(group_weights):
                longest = max(len(lst) for lst in entry_lists)
                if longest == 0:
                    continue  # all four filters zero: skip channel
                steps = max(MIN_CYCLES_PER_WEIGHT_TILE, longest)
                self.segments.append(
                    _StreamSegment(lc, steps, entry_lists, tile))
        self.total_messages = sum(s.steps for s in self.segments)


class StagingStream:
    """Cursor over one (group, tile position)'s MAC-message stream.

    Drives both execution modes of the staging unit's steady-state loop:
    the scalar generator calls :meth:`next_message` once per cycle, and
    the burst engine (:mod:`repro.core.burst`) advances the cursor many
    messages at once via :meth:`burst_slices`.  ``streaming`` is True
    exactly while the generator is parked at the in-loop ``Tick(1)``
    with the cursor consistent — the burst engine's licence to advance
    the stream without touching the generator.
    """

    __slots__ = ("schedule", "bank", "instr", "py", "px", "tile",
                 "seg_idx", "k", "streaming")

    def __init__(self, schedule: StagingSchedule, bank: SramBank,
                 instr: ConvInstruction, py: int, px: int, tile: int):
        self.schedule = schedule
        self.bank = bank
        self.instr = instr
        self.py = py
        self.px = px
        self.tile = tile
        self.seg_idx = 0
        self.k = 0
        self.streaming = False

    @property
    def remaining(self) -> int:
        """Messages not yet emitted (0 once the stream is exhausted)."""
        segments = self.schedule.segments
        if self.seg_idx >= len(segments):
            return 0
        return (sum(s.steps for s in segments[self.seg_idx:]) - self.k)

    def load_region(self, lc: int) -> np.ndarray:
        return _load_region(self.bank, self.instr, lc, self.py, self.px,
                            self.tile)

    def next_message(self):
        """Emit the next MAC message (scalar path), or ``None`` at end.

        Channel transitions are seamless — a new channel's region load
        happens in the same cycle as its ``k = 0`` message, exactly as
        the pre-descriptor nested loops did.
        """
        segments = self.schedule.segments
        if self.seg_idx >= len(segments):
            return None
        segment = segments[self.seg_idx]
        k = self.k
        region = self.load_region(segment.lc) if k == 0 else None
        msg = ("mac", region, segment.weights[k], segment.offsets[k])
        k += 1
        if k >= segment.steps:
            self.seg_idx += 1
            self.k = 0
        else:
            self.k = k
        return msg

    def burst_slices(self, count: int, loader):
        """Advance the cursor ``count`` messages; return vectorizable slices.

        Returns ``(slices, tail)`` where ``slices`` is a list of
        ``(region_or_None, weights, offsets)`` — ``weights``/``offsets``
        are ``(n, 4)`` int64 array views covering consecutive messages,
        and ``region`` is the freshly loaded IFM region when the slice
        starts at ``k = 0`` (``None`` continues the previous region) —
        and ``tail`` is the exact message tuple of the final emitted
        message (the one left in flight after the window).  ``loader``
        is called as ``loader(stream, lc, offset)`` for each region
        load, where ``offset`` is the message's position in the window,
        so the caller can stage ``sim.now`` to the exact emission cycle.
        """
        segments = self.schedule.segments
        slices = []
        tail = None
        emitted = 0
        while emitted < count:
            segment = segments[self.seg_idx]
            take = min(segment.steps - self.k, count - emitted)
            start_k = self.k
            region = None
            if start_k == 0:
                region = loader(self, segment.lc, emitted)
            w_arr, o_arr = segment.arrays()
            slices.append((region, w_arr[start_k:start_k + take],
                           o_arr[start_k:start_k + take]))
            emitted += take
            self.k = start_k + take
            if emitted == count:
                last_k = self.k - 1
                w_quad, o_quad = segment.message_quads(last_k)
                tail = ("mac", region if last_k == 0 else None,
                        w_quad, o_quad)
            if self.k >= segment.steps:
                self.seg_idx += 1
                self.k = 0
        return slices, tail


class PadPoolStream:
    """Cursor over one pad/pool instruction's staging iterations.

    Mirrors :class:`StagingStream` for the pad/pool FSM: the scalar
    generator calls :meth:`load_next` / :meth:`take` once per loop
    iteration, and the burst engine replays whole 4-cycle periods by
    calling the same methods at staged clocks — the generator stays
    parked at its ``Tick(4)`` while the cursor advances.  ``pending``
    holds the loaded message between the region fetch and its
    ``padpool_q`` push (the loop's only cross-iteration state).
    """

    __slots__ = ("bank", "instr", "tile", "pending", "_idx", "_total")

    def __init__(self, bank: SramBank, instr: PadPoolInstruction, tile: int):
        self.bank = bank
        self.instr = instr
        self.tile = tile
        self.pending = None
        self._idx = 0
        self._total = (instr.local_channels * instr.ofm_tiles_y
                       * instr.ofm_tiles_x)

    @property
    def loads_remaining(self) -> int:
        """Region loads not yet performed."""
        return self._total - self._idx

    def load_next(self) -> None:
        """Fetch the next iteration's region (bank reads happen *now*)."""
        instr, tile = self.instr, self.tile
        per_channel = instr.ofm_tiles_y * instr.ofm_tiles_x
        lc, rem = divmod(self._idx, per_channel)
        ty, tx = divmod(rem, instr.ofm_tiles_x)
        self._idx += 1
        if instr.opcode is Opcode.PAD:
            src_y = ty * tile - instr.pad
            src_x = tx * tile - instr.pad
            win, stride = 1, 1
        else:
            src_y = ty * tile * instr.stride
            src_x = tx * tile * instr.stride
            win, stride = instr.win, instr.stride
        t0y, off_y = divmod(src_y, tile)
        t0x, off_x = divmod(src_x, tile)
        region = _load_padpool_region(self.bank, instr, lc, t0y, t0x, tile)
        addr = instr.ofm_base + (
            (lc * instr.ofm_tiles_y + ty) * instr.ofm_tiles_x + tx)
        self.pending = (region, off_y, off_x, win, stride, addr)

    def take(self):
        msg = self.pending
        self.pending = None
        return msg


class StagingPhase:
    """Published phase state of one staging unit (see ``Kernel.phase``)."""

    __slots__ = ("stream", "pp_stream")

    def __init__(self):
        #: The active :class:`StagingStream`, or ``None`` outside the
        #: steady-state MAC loop.
        self.stream: StagingStream | None = None
        #: The active :class:`PadPoolStream`, or ``None`` outside the
        #: pad/pool staging loop.
        self.pp_stream: PadPoolStream | None = None


def staging_kernel(unit: int, bank: SramBank, instr_q: PthreadFifo,
                   conv_q: PthreadFifo, padpool_q: PthreadFifo,
                   done_q: PthreadFifo, barrier: Barrier,
                   lanes: int = 4, tile: int = 4,
                   phase: StagingPhase | None = None):
    """Generator body of one data-staging/control unit."""
    if phase is None:
        phase = StagingPhase()
    while True:
        instr = yield instr_q.read()
        yield Tick(1)  # instruction decode
        if isinstance(instr, ConvInstruction):
            yield from _run_conv(unit, bank, instr, conv_q, barrier,
                                 lanes, tile, phase)
        elif isinstance(instr, PadPoolInstruction):
            yield from _run_padpool(unit, bank, instr, padpool_q, tile,
                                    phase)
        else:
            raise TypeError(f"staging unit {unit}: bad instruction {instr!r}")
        yield done_q.write(("done", unit, instr.instr_id))
        yield Tick(1)


# -- convolution FSM ------------------------------------------------------------


def _run_conv(unit: int, bank: SramBank, instr: ConvInstruction,
              conv_q: PthreadFifo, barrier: Barrier, lanes: int, tile: int,
              phase: StagingPhase):
    group_size = lanes
    groups = -(-instr.out_channels // group_size)
    stream_addr = instr.weight_base
    for g in range(groups):
        schedule, consumed = _load_group_schedule(
            bank, stream_addr, instr.local_channels, group_size,
            instr.compact_weights, tile)
        stream_addr += consumed
        # Streaming the packed bytes into scratchpad occupies port A.
        yield Tick(max(1, bank.stream_cycles(consumed)))
        meta_biases = None
        if instr.biases:
            lo = g * group_size
            quad = [0] * group_size
            for j in range(group_size):
                if lo + j < instr.out_channels:
                    quad[j] = int(instr.biases[lo + j])
            meta_biases = tuple(quad)
        for py in range(instr.ofm_tiles_y):
            for px in range(instr.ofm_tiles_x):
                meta = None
                if unit == 0:
                    addr = instr.ofm_base + (
                        (g * instr.ofm_tiles_y + py) * instr.ofm_tiles_x + px)
                    meta = PositionMeta(
                        ofm_addr=addr,
                        biases=meta_biases or (0,) * group_size,
                        shift=instr.shift,
                        apply_relu=instr.apply_relu,
                    )
                yield conv_q.write(("start", meta))
                # Prologue: preload the first channel's four IFM tiles.
                yield Tick(MIN_CYCLES_PER_WEIGHT_TILE)
                stream = StagingStream(schedule, bank, instr, py, px, tile)
                phase.stream = stream
                while True:
                    msg = stream.next_message()
                    if msg is None:
                        break
                    yield conv_q.write(msg)
                    stream.streaming = True
                    yield Tick(1)
                    stream.streaming = False
                phase.stream = None
                yield conv_q.write(("finish",))
                yield barrier.wait()


def _parse_stream(fetch, stream_addr: int, local_channels: int,
                  group_size: int, compact: bool = False,
                  tile: int = 4
                  ) -> tuple[list[list[list[PackedEntry]]], int]:
    """Parse one group's packed weights via ``fetch(pos, count)`` reads.

    Returns ``(weights, bytes_consumed)`` where ``weights[lc][j]`` is
    the entry list for local channel ``lc``, filter-in-group ``j``.
    Supports both packed formats (see
    :func:`repro.core.packing.serialize_unit_stream`).
    """
    weights: list[list[list[PackedEntry]]] = []
    pos = stream_addr
    max_count = tile * tile  # a weight tile's entry capacity
    for _ in range(local_channels):
        per_filter: list[list[PackedEntry]] = []
        for _ in range(group_size):
            count = int(fetch(pos, 1)[0])
            if not 0 <= count <= max_count:
                raise ValueError(
                    f"corrupt packed stream at {pos}: count byte {count} "
                    f"outside [0, {max_count}]")
            pos += 1
            entries: list[PackedEntry] = []
            if count and compact:
                offset_bytes = (count + 1) // 2
                raw = fetch(pos, offset_bytes + count)
                pos += offset_bytes + count
                offsets = []
                for i in range(offset_bytes):
                    byte = int(raw[i])
                    offsets.append(byte & 0xF)
                    offsets.append((byte >> 4) & 0xF)
                for i in range(count):
                    entries.append(PackedEntry(
                        offsets[i], decode(int(raw[offset_bytes + i]))))
            elif count:
                raw = fetch(pos, 2 * count)
                pos += 2 * count
                for i in range(count):
                    entries.append(PackedEntry(int(raw[2 * i]),
                                               decode(int(raw[2 * i + 1]))))
            per_filter.append(entries)
        weights.append(per_filter)
    return weights, pos - stream_addr


def _load_group_weights(bank: SramBank, stream_addr: int, local_channels: int,
                        group_size: int, compact: bool = False,
                        tile: int = 4
                        ) -> tuple[list[list[list[PackedEntry]]], int]:
    """Parse one group's packed weights out of the bank stream.

    The legacy field-by-field read path: every count byte and entry
    slice is a separate :meth:`SramBank.read_stream` call, so an armed
    bank fault hook sees exactly the per-field access pattern the
    hardware FSM would issue.  The un-hooked fast path
    (:func:`_load_group_schedule`) issues one bulk read instead.
    """
    return _parse_stream(bank.read_stream, stream_addr, local_channels,
                         group_size, compact, tile)


def _scan_group_length(storage: np.ndarray, stream_addr: int,
                       local_channels: int, group_size: int,
                       compact: bool, tile: int) -> int:
    """Length (values) of one group's packed stream, by count-byte walk.

    Reads ``storage`` directly with no side effects — the follow-up
    bulk :meth:`SramBank.read_stream` performs the accounted transfer
    of exactly this many values (the same total the field-by-field
    path reads).
    """
    pos = stream_addr
    max_count = tile * tile
    limit = storage.size
    for _ in range(local_channels * group_size):
        if pos >= limit:
            raise IndexError(
                f"packed stream scan at {pos} outside capacity {limit}")
        count = int(storage[pos])
        if not 0 <= count <= max_count:
            raise ValueError(
                f"corrupt packed stream at {pos}: count byte {count} "
                f"outside [0, {max_count}]")
        pos += 1
        if count and compact:
            pos += (count + 1) // 2 + count
        elif count:
            pos += 2 * count
    return pos - stream_addr


def _parse_schedule_arrays(raw: np.ndarray, local_channels: int,
                           group_size: int, compact: bool, tile: int
                           ) -> tuple[StagingSchedule, int]:
    """Vectorized parse of one group's packed bytes into a schedule.

    Decodes each filter's entries with numpy slicing (sign-magnitude
    decode included) and writes them straight into the segments'
    ``(steps, 4)`` arrays — no per-entry Python objects.  Produces
    bit-identical schedules to the :func:`_parse_stream` +
    :class:`_StreamSegment` tuple path; the scalar generator's message
    tuples are derived lazily from the arrays on first use.
    """
    arr = np.asarray(raw, dtype=np.int64)
    pos = 0
    segments: list[_StreamSegment] = []
    for lc in range(local_channels):
        per_offs: list[np.ndarray | None] = []
        per_wts: list[np.ndarray | None] = []
        counts = []
        for _ in range(group_size):
            count = int(arr[pos])
            pos += 1
            counts.append(count)
            if count and compact:
                offset_bytes = (count + 1) // 2
                obytes = arr[pos:pos + offset_bytes]
                offs = np.empty(2 * offset_bytes, dtype=np.int64)
                offs[0::2] = obytes & 0xF
                offs[1::2] = (obytes >> 4) & 0xF
                wbytes = arr[pos + offset_bytes:pos + offset_bytes + count]
                pos += offset_bytes + count
                per_offs.append(offs[:count])
                per_wts.append(wbytes)
            elif count:
                pairs = arr[pos:pos + 2 * count]
                pos += 2 * count
                per_offs.append(pairs[0::2])
                per_wts.append(pairs[1::2])
            else:
                per_offs.append(None)
                per_wts.append(None)
        longest = max(counts)
        if longest == 0:
            continue  # all four filters zero: skip channel
        steps = max(MIN_CYCLES_PER_WEIGHT_TILE, longest)
        w_arr = np.zeros((steps, group_size), dtype=np.int64)
        o_arr = np.zeros((steps, group_size), dtype=np.int64)
        for j, count in enumerate(counts):
            if count:
                wbytes = per_wts[j]
                # Sign-magnitude decode (repro.quant.signmag.decode).
                w_arr[:count, j] = np.where(wbytes & 0x80,
                                            -(wbytes & 0x7F),
                                            wbytes & 0x7F)
                o_arr[:count, j] = per_offs[j]
        segments.append(_StreamSegment.from_arrays(lc, steps, w_arr, o_arr))
    del tile  # geometry is fixed by the packed format itself
    return StagingSchedule(segments=segments), pos


def _load_group_schedule(bank: SramBank, stream_addr: int,
                         local_channels: int, group_size: int,
                         compact: bool, tile: int
                         ) -> tuple[StagingSchedule, int]:
    """One group's :class:`StagingSchedule` from the bank stream.

    Fast path for un-hooked banks: scan the count bytes to size the
    group, fetch it with a single accounted ``read_stream`` (same
    ``stream_values_read`` total as the field-by-field path), parse it
    vectorized, and memoize the parsed schedule on the raw byte
    content — identical layers (other execution modes of a
    differential pair, repeated inferences) skip the Python-side parse
    entirely.  Falls back to per-field reads while a fault hook is
    armed, so injected corruption keeps its exact access granularity.
    """
    if bank.fault_hook is not None:
        weights, consumed = _load_group_weights(
            bank, stream_addr, local_channels, group_size, compact, tile)
        return StagingSchedule(weights, tile), consumed
    consumed = _scan_group_length(bank.storage, stream_addr,
                                  local_channels, group_size, compact, tile)
    raw = bank.read_stream(stream_addr, consumed)

    def build() -> StagingSchedule:
        schedule, parsed = _parse_schedule_arrays(
            raw, local_channels, group_size, compact, tile)
        assert parsed == consumed
        return schedule

    key = (raw.tobytes(), local_channels, group_size, compact, tile)
    return _SCHEDULE_CACHE.get_or_build(key, build), consumed


def _load_region(bank: SramBank, instr: ConvInstruction, lc: int,
                 py: int, px: int, tile: int) -> np.ndarray:
    """Assemble the 2x2-tile (8x8) IFM region anchored at tile (py, px).

    Tiles outside the stripe's tile grid read as zero (they are either
    alignment padding or past the feature map edge).
    """
    region = np.zeros((2 * tile, 2 * tile), dtype=np.int64)
    for dy in range(2):
        for dx in range(2):
            ty, tx = py + dy, px + dx
            if ty >= instr.ifm_tiles_y or tx >= instr.ifm_tiles_x:
                continue
            addr = instr.ifm_base + (
                (lc * instr.ifm_tiles_y + ty) * instr.ifm_tiles_x + tx)
            values = bank.read_tile(addr).reshape(tile, tile)
            region[dy * tile:(dy + 1) * tile,
                   dx * tile:(dx + 1) * tile] = values
    return region


# -- padding / max-pooling FSM ----------------------------------------------------


def _run_padpool(unit: int, bank: SramBank, instr: PadPoolInstruction,
                 padpool_q: PthreadFifo, tile: int, phase: StagingPhase):
    del unit  # lanes operate independently; kept for symmetry/debugging
    stream = PadPoolStream(bank, instr, tile)
    if stream.loads_remaining == 0:
        return
    phase.pp_stream = stream
    while True:
        stream.load_next()
        # One cycle ticked per tile fetched (single read port).
        yield Tick(4)
        yield padpool_q.write(stream.take())
        if stream.loads_remaining == 0:
            break
    phase.pp_stream = None


def _load_padpool_region(bank: SramBank, instr: PadPoolInstruction, lc: int,
                         t0y: int, t0x: int, tile: int) -> np.ndarray:
    """2x2-tile window anchored at (t0y, t0x); out-of-range tiles are zero.

    Values beyond the IFM's true extent (``ifm_height``/``ifm_width``,
    the Fig. 3 "IFM Dim" field) are masked to zero: tiles are stored
    whole, so a producing instruction leaves garbage in the dead
    positions of edge tiles, and padding would otherwise shift that
    garbage into valid output positions.
    """
    region = np.zeros((2 * tile, 2 * tile), dtype=np.int64)
    height = instr.ifm_height or instr.ifm_tiles_y * tile
    width = instr.ifm_width or instr.ifm_tiles_x * tile
    for dy in range(2):
        for dx in range(2):
            ty, tx = t0y + dy, t0x + dx
            if not (0 <= ty < instr.ifm_tiles_y
                    and 0 <= tx < instr.ifm_tiles_x):
                continue
            addr = instr.ifm_base + (
                (lc * instr.ifm_tiles_y + ty) * instr.ifm_tiles_x + tx)
            values = bank.read_tile(addr).reshape(tile, tile)
            valid_rows = max(0, min(tile, height - ty * tile))
            valid_cols = max(0, min(tile, width - tx * tile))
            if valid_rows < tile or valid_cols < tile:
                masked = np.zeros((tile, tile), dtype=values.dtype)
                masked[:valid_rows, :valid_cols] = \
                    values[:valid_rows, :valid_cols]
                values = masked
            region[dy * tile:(dy + 1) * tile,
                   dx * tile:(dx + 1) * tile] = values
    return region
