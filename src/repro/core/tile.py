"""4x4 tiling of feature maps (Fig. 2).

Feature maps are organized into tiles of ``TILE x TILE`` values; tiles
are stored in memory in row-major order, channel by channel. An entire
tile (16 values) is one SRAM word — it can be read or written in a
single cycle — so the tile is the accelerator's unit of data movement.

Feature maps whose height/width is not a multiple of the tile size are
padded with zeros on the bottom/right; the padding values are dead
(never read back as results).
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import assert_chw

#: The paper's tile edge: 4x4 values per tile.
TILE = 4


def tiles_along(extent: int, tile: int = TILE) -> int:
    """Number of tiles covering ``extent`` values (ceiling division)."""
    if extent < 1:
        raise ValueError(f"extent must be >= 1, got {extent}")
    if tile < 1:
        raise ValueError(f"tile must be >= 1, got {tile}")
    return -(-extent // tile)


def pad_to_tiles(fm: np.ndarray, tile: int = TILE) -> np.ndarray:
    """Zero-pad a CHW map on bottom/right to tile-aligned dimensions."""
    assert_chw(fm)
    _, h, w = fm.shape
    pad_h = tiles_along(h, tile) * tile - h
    pad_w = tiles_along(w, tile) * tile - w
    if pad_h == 0 and pad_w == 0:
        return fm.copy()
    return np.pad(fm, ((0, 0), (0, pad_h), (0, pad_w)))


def to_tiles(fm: np.ndarray, tile: int = TILE) -> np.ndarray:
    """CHW map -> ``(C, TY, TX, tile, tile)`` tile array (pads first)."""
    padded = pad_to_tiles(fm, tile)
    c, h, w = padded.shape
    shaped = padded.reshape(c, h // tile, tile, w // tile, tile)
    return shaped.transpose(0, 1, 3, 2, 4).copy()


def from_tiles(tiles: np.ndarray, height: int, width: int) -> np.ndarray:
    """Inverse of :func:`to_tiles`, cropping away alignment padding."""
    if tiles.ndim != 5 or tiles.shape[3] != tiles.shape[4]:
        raise ValueError(f"expected (C,TY,TX,t,t) tiles, got {tiles.shape}")
    c, ty, tx, tile, _ = tiles.shape
    fm = tiles.transpose(0, 1, 3, 2, 4).reshape(c, ty * tile, tx * tile)
    if height > ty * tile or width > tx * tile:
        raise ValueError(
            f"cannot crop {ty * tile}x{tx * tile} tiles to {height}x{width}")
    return fm[:, :height, :width].copy()


def flatten_tiled(fm: np.ndarray, tile: int = TILE) -> np.ndarray:
    """Serialize a CHW map into tiled memory order (Fig. 2, right).

    Returns a 1-D array: channel-major, then tile-row-major, each tile's
    16 values in row-major order — the exact order the ARM software
    produces when "reordering data into tiled format" (Section IV-C)
    and the order tiles occupy in the SRAM banks.
    """
    return to_tiles(fm, tile).reshape(-1)


def unflatten_tiled(flat: np.ndarray, channels: int, height: int, width: int,
                    tile: int = TILE) -> np.ndarray:
    """Inverse of :func:`flatten_tiled` for the given logical dimensions."""
    ty = tiles_along(height, tile)
    tx = tiles_along(width, tile)
    expected = channels * ty * tx * tile * tile
    flat = np.asarray(flat)
    if flat.size != expected:
        raise ValueError(
            f"flat size {flat.size} != expected {expected} for "
            f"{channels}x{height}x{width} at tile {tile}")
    tiles = flat.reshape(channels, ty, tx, tile, tile)
    return from_tiles(tiles, height, width)


def tile_index(ty: int, tx: int, tiles_x: int) -> int:
    """Row-major index of tile (ty, tx) within one channel's tile grid."""
    if ty < 0 or tx < 0 or tx >= tiles_x:
        raise ValueError(f"tile ({ty}, {tx}) outside grid width {tiles_x}")
    return ty * tiles_x + tx
