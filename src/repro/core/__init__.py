"""The accelerator core: tiling, packing, kernels, assembled instances."""

from repro.core.accelerator import (AcceleratorConfig, AcceleratorInstance,
                                    ConvSetup, execute_concurrent,
                                    execute_conv, execute_padpool,
                                    prepare_conv)
from repro.core.instructions import (ConvInstruction, Opcode,
                                     PadPoolInstruction, PositionMeta)
from repro.core.packing import (PackedEntry, PackedLayer, out_groups,
                                parse_tile_entries, parse_unit_stream,
                                serialize_unit_stream, unit_channels,
                                unit_group_stream_bytes)
from repro.core.padpool import MAX_UNITS, compute_padpool_tile
from repro.core.pool_plan import (compose, execute_pool_general,
                                  plan_pool_decomposition)
from repro.core.sram import (DEFAULT_BANK_CAPACITY, SramBank, SramStats,
                             make_banks)
from repro.core.staging import MIN_CYCLES_PER_WEIGHT_TILE
from repro.core.tile import (TILE, flatten_tiled, from_tiles, pad_to_tiles,
                             tile_index, tiles_along, to_tiles,
                             unflatten_tiled)
from repro.core.variants import (ALL_VARIANTS, AcceleratorVariant,
                                 VARIANT_16_UNOPT, VARIANT_256_OPT,
                                 VARIANT_256_UNOPT, VARIANT_512_OPT,
                                 custom_variant, variant_by_name)

__all__ = [
    "AcceleratorConfig", "AcceleratorInstance", "ConvSetup",
    "execute_concurrent", "execute_conv", "execute_padpool",
    "prepare_conv",
    "ConvInstruction", "Opcode", "PadPoolInstruction", "PositionMeta",
    "PackedEntry", "PackedLayer", "out_groups", "parse_tile_entries",
    "parse_unit_stream",
    "serialize_unit_stream", "unit_channels", "unit_group_stream_bytes",
    "MAX_UNITS", "compute_padpool_tile",
    "compose", "execute_pool_general", "plan_pool_decomposition",
    "DEFAULT_BANK_CAPACITY", "SramBank", "SramStats", "make_banks",
    "MIN_CYCLES_PER_WEIGHT_TILE",
    "TILE", "flatten_tiled", "from_tiles", "pad_to_tiles", "tile_index",
    "tiles_along", "to_tiles", "unflatten_tiled",
    "ALL_VARIANTS", "AcceleratorVariant", "VARIANT_16_UNOPT",
    "VARIANT_256_OPT", "VARIANT_256_UNOPT", "VARIANT_512_OPT",
    "custom_variant", "variant_by_name",
]
