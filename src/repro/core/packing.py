"""Offline zero-weight packing (Section III-B).

"For a given neural network model, the non-zero weights and their
intra-tile offsets are packed offline in advance in software. ...
During inference, the accelerator receives the weight values and their
intra-tile offsets in a packed format that is read directly into
scratchpad memory. One non-zero weight is applied per clock cycle; no
cycles are spent on weights having a value of 0."

A *weight tile* is one kernel (e.g. 3x3) placed at its intra-tile
offsets inside a ``tile x tile`` grid: kernel position ``(ky, kx)``
has offset ``ky * tile + kx``. Packing keeps only non-zero weights as
``(offset, sign-magnitude byte)`` pairs.

The stream format consumed by a data-staging unit ``u`` is, per OFM
group ``g``, per local input channel, per filter-in-group:
``[count][offset, weight] * count`` — all single bytes. Its length is
what the unit spends port-A cycles loading into scratchpad, which is
exactly the "weight unpacking" overhead the paper observes growing for
the deeper, weight-heavy layers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tile import TILE
from repro.nn.tensor import assert_ochw
from repro.obs.cache import KeyedCache
from repro.quant.signmag import MAX_MAG, decode, encode

#: Memoizes :meth:`PackedLayer.pack` — the Python per-position walk is
#: the priciest step of staging a layer, and serving/benchmark paths
#: pack the same weights repeatedly.  Hit/miss counters surface via
#: ``repro.obs.cache_stats()``.
_PACK_CACHE = KeyedCache("packing.pack", maxsize=32)


@dataclass(frozen=True)
class PackedEntry:
    """One non-zero weight and its intra-tile offset."""

    offset: int   # ky * tile + kx, in [0, tile*tile)
    weight: int   # non-zero, in [-127, 127]


class PackedLayer:
    """Packed weights of one convolution layer.

    ``entries[o][c]`` is the packed list for the weight tile connecting
    input channel ``c`` to output channel ``o``, in row-major kernel
    order (deterministic, so hardware and model agree on cycle order).
    """

    def __init__(self, out_channels: int, in_channels: int, kernel: int,
                 tile: int, entries: list[list[list[PackedEntry]]]):
        self.out_channels = out_channels
        self.in_channels = in_channels
        self.kernel = kernel
        self.tile = tile
        self.entries = entries
        #: Memoized per-unit byte streams (serialize_unit_stream).
        self._streams: dict[tuple, np.ndarray] = {}

    @classmethod
    def pack(cls, weights_q: np.ndarray, tile: int = TILE) -> "PackedLayer":
        """Pack quantized OCHW weights (integers in [-127, 127]).

        Memoized on the weight bytes: repeated packs of identical
        weights (serving, benchmarks, repeated layer runs) return the
        same ``PackedLayer`` instance.  Treat it as read-only.
        """
        assert_ochw(weights_q)
        out_ch, in_ch, kernel_h, kernel_w = weights_q.shape
        if kernel_h != kernel_w:
            raise ValueError(f"kernels must be square, got {weights_q.shape}")
        if kernel_h > tile:
            raise ValueError(
                f"kernel {kernel_h} exceeds tile {tile}; weight tiles "
                f"cannot hold the filter")
        weights_q = np.asarray(weights_q)
        if weights_q.size and np.abs(weights_q).max() > MAX_MAG:
            raise ValueError("weights exceed sign-magnitude range [-127,127]")
        key = (tile, weights_q.shape, weights_q.dtype.str,
               weights_q.tobytes())
        return _PACK_CACHE.get_or_build(
            key, lambda: cls._pack_uncached(weights_q, tile))

    @classmethod
    def _pack_uncached(cls, weights_q: np.ndarray,
                       tile: int) -> "PackedLayer":
        out_ch, in_ch, kernel_h, kernel_w = weights_q.shape
        entries: list[list[list[PackedEntry]]] = []
        for o in range(out_ch):
            per_channel: list[list[PackedEntry]] = []
            for c in range(in_ch):
                tile_entries = [
                    PackedEntry(ky * tile + kx, int(weights_q[o, c, ky, kx]))
                    for ky in range(kernel_h)
                    for kx in range(kernel_w)
                    if weights_q[o, c, ky, kx] != 0
                ]
                per_channel.append(tile_entries)
            entries.append(per_channel)
        return cls(out_ch, in_ch, kernel_h, tile, entries)

    def unpack(self) -> np.ndarray:
        """Reconstruct the dense OCHW integer weight tensor."""
        dense = np.zeros((self.out_channels, self.in_channels,
                          self.kernel, self.kernel), dtype=np.int16)
        for o in range(self.out_channels):
            for c in range(self.in_channels):
                for entry in self.entries[o][c]:
                    ky, kx = divmod(entry.offset, self.tile)
                    dense[o, c, ky, kx] = entry.weight
        return dense

    # -- statistics the performance model consumes -----------------------------

    def nnz_matrix(self) -> np.ndarray:
        """(O, C) array of per-weight-tile non-zero counts."""
        return np.array([[len(self.entries[o][c])
                          for c in range(self.in_channels)]
                         for o in range(self.out_channels)], dtype=np.int64)

    @property
    def total_nonzeros(self) -> int:
        return int(self.nnz_matrix().sum())

    @property
    def density(self) -> float:
        dense_count = (self.out_channels * self.in_channels
                       * self.kernel * self.kernel)
        return self.total_nonzeros / dense_count

    def tile_entries(self, out_channel: int, in_channel: int
                     ) -> list[PackedEntry]:
        if out_channel >= self.out_channels:
            return []  # group padding beyond the last real filter
        return self.entries[out_channel][in_channel]


def unit_channels(in_channels: int, unit: int, lanes: int = 4) -> list[int]:
    """Input channels owned by data-staging unit ``unit``.

    Channels are interleaved across banks (channel ``c`` lives in bank
    ``c mod lanes``), so each unit manages one quarter of the IFMs
    (Section III-B1).
    """
    if not 0 <= unit < lanes:
        raise ValueError(f"unit {unit} outside [0, {lanes})")
    return list(range(unit, in_channels, lanes))


def out_groups(out_channels: int, group_size: int = 4) -> int:
    """Number of concurrently-computed OFM groups."""
    return -(-out_channels // group_size)


def serialize_unit_stream(packed: PackedLayer, unit: int, lanes: int = 4,
                          group_size: int = 4,
                          compact: bool = False) -> np.ndarray:
    """Byte stream for one staging unit's scratchpad loads.

    Default layout: for each OFM group, for each of the unit's local
    channels, for each of the ``group_size`` filters: a count byte
    followed by ``count`` (offset, sign-magnitude weight) byte pairs —
    two bytes per non-zero.

    ``compact=True`` selects the nibble-packed format (in the spirit of
    Deep Compression's final coding stage, paper ref [9]): the count
    byte, then ``ceil(count / 2)`` bytes of 4-bit offsets (two per
    byte, low nibble first), then ``count`` weight bytes — 1.5 bytes
    per non-zero. Offsets fit a nibble only while ``tile <= 4``
    (offsets 0..15), which is the paper's configuration.

    The stream is a pure function of the packed layer, so it is
    memoized on the ``PackedLayer`` instance (which :meth:`~PackedLayer
    .pack` itself memoizes on content) — repeated stagings of the same
    layer serialize once.  Treat the returned array as read-only.
    """
    if compact and packed.tile > 4:
        raise ValueError(
            f"compact encoding needs offsets < 16 (tile <= 4), "
            f"tile is {packed.tile}")
    memo_key = (unit, lanes, group_size, compact)
    cached = packed._streams.get(memo_key)
    if cached is not None:
        return cached
    stream: list[int] = []
    for g in range(out_groups(packed.out_channels, group_size)):
        for c in unit_channels(packed.in_channels, unit, lanes):
            for j in range(group_size):
                entries = packed.tile_entries(g * group_size + j, c)
                stream.append(len(entries))
                if compact:
                    for first in range(0, len(entries), 2):
                        low = entries[first].offset
                        high = (entries[first + 1].offset
                                if first + 1 < len(entries) else 0)
                        stream.append((high << 4) | low)
                    for entry in entries:
                        stream.append(encode(entry.weight))
                else:
                    for entry in entries:
                        stream.append(entry.offset)
                        stream.append(encode(entry.weight))
    result = np.array(stream, dtype=np.int16)
    packed._streams[memo_key] = result
    return result


def parse_tile_entries(stream: np.ndarray, pos: int,
                       compact: bool = False
                       ) -> tuple[list[PackedEntry], int]:
    """Parse one weight tile's packed entries starting at ``pos``.

    Returns ``(entries, new_pos)``. Shared by the offline parser and
    the staging unit's unpacker FSM so the two can never diverge.
    """
    count = int(stream[pos])
    pos += 1
    entries: list[PackedEntry] = []
    if compact:
        offset_bytes = (count + 1) // 2
        offsets = []
        for i in range(offset_bytes):
            byte = int(stream[pos + i])
            offsets.append(byte & 0xF)
            offsets.append((byte >> 4) & 0xF)
        pos += offset_bytes
        for i in range(count):
            entries.append(PackedEntry(offsets[i],
                                       decode(int(stream[pos + i]))))
        pos += count
    else:
        for _ in range(count):
            entries.append(PackedEntry(int(stream[pos]),
                                       decode(int(stream[pos + 1]))))
            pos += 2
    return entries, pos


def parse_unit_stream(stream: np.ndarray, in_channels: int, out_channels: int,
                      unit: int, lanes: int = 4, group_size: int = 4,
                      compact: bool = False
                      ) -> list[list[list[list[PackedEntry]]]]:
    """Parse a unit stream back into ``[group][local_ch][filter]`` lists.

    This is what the staging unit's unpacker FSM does with the bytes it
    streamed into scratchpad.
    """
    stream = np.asarray(stream)
    parsed: list[list[list[list[PackedEntry]]]] = []
    pos = 0
    channels = unit_channels(in_channels, unit, lanes)
    for _ in range(out_groups(out_channels, group_size)):
        group_lists: list[list[list[PackedEntry]]] = []
        for _ in channels:
            filter_lists: list[list[PackedEntry]] = []
            for _ in range(group_size):
                entries, pos = parse_tile_entries(stream, pos, compact)
                filter_lists.append(entries)
            group_lists.append(filter_lists)
        parsed.append(group_lists)
    if pos != stream.size:
        raise ValueError(
            f"stream has {stream.size - pos} trailing values after parse")
    return parsed


def unit_group_stream_bytes(packed: PackedLayer, lanes: int = 4,
                            group_size: int = 4,
                            compact: bool = False) -> np.ndarray:
    """Stream length in bytes per (unit, group) — the unpack cost input.

    Returns an array of shape ``(lanes, groups)``; entry ``[u, g]`` is
    the number of bytes unit ``u`` loads for group ``g``:
    ``group_size * local_channels`` count bytes plus two bytes per
    non-zero entry (1.5 amortized with the compact nibble encoding).
    """
    nnz = packed.nnz_matrix()  # (O, C)
    groups = out_groups(packed.out_channels, group_size)
    sizes = np.zeros((lanes, groups), dtype=np.int64)
    for unit in range(lanes):
        channels = unit_channels(packed.in_channels, unit, lanes)
        if not channels:
            continue
        for g in range(groups):
            lo = g * group_size
            hi = min(lo + group_size, packed.out_channels)
            tile_counts = nnz[lo:hi, channels]
            count_bytes = group_size * len(channels)
            if compact:
                entry_bytes = int(tile_counts.sum()
                                  + ((tile_counts + 1) // 2).sum())
            else:
                entry_bytes = 2 * int(tile_counts.sum())
            sizes[unit, g] = count_bytes + entry_bytes
    return sizes
