"""Burst-mode vectorized execution of steady-state pipeline phases.

The paper's accelerator earns its throughput in one regime: an IFM
region is latched, packed weights stream at one group per cycle, and
up to 64 multiplies fire per convolution unit per cycle with fully
regular dataflow (Section III-B).  The cycle-accurate model pays
Python-generator dispatch for every one of those cycles — PR 3's
cycle-warp eliminates *dead* windows, but a compute-bound layer has
almost none.

This module adds the third scheduler mode as a family of phase
replayers behind one :class:`BurstPipeline` dispatcher.  Each replayer
structurally detects one steady-state pattern, replays whole windows
(>= :data:`MIN_BURST_CYCLES`) as batched numpy plus staged-clock FIFO
and SRAM operations, and bulk-credits every per-cycle side effect —
kernel cycle counters, FIFO port/stall stats, occupancy integrals,
timeline samples, trace events and watchdog checks land bit- and
cycle-identically to the reference stepper:

* :class:`MacStreamReplayer` — the steady-state MAC stream: staging
  units feeding convolution units feeding accumulators at II = 1,
  executed as one batched ``einsum`` over the 8x8 regions.
* :class:`PadPoolReplayer` — the pad/pool chain's period-4 steady
  state: staging quad-loads a region and emits a message, the pad/pool
  unit computes a tile, the writeback unit drains it — replayed with
  batched sliding-window maxima and real staged-clock queue traffic.
* :class:`WritebackDrainReplayer` — a writeback unit draining a
  backlog of completed tiles at one pop + one SRAM write per cycle
  while its producers are quiet.
* :class:`repro.soc.dma.DmaServiceReplayer` (registered by the DMA
  controller) — the engine's ``while not request.done`` service loop,
  an always-live poll that defeats cycle-warp.

Replayers check the attached obs hub's capabilities *per hook*: a hub
that implements the bulk hooks a replayer needs (``on_burst`` /
``on_burst_window`` / ``on_warp`` plus ``on_stall_span``) keeps the
fast path; a hub that lacks them only disables the replayers that
cannot reproduce its observations.  With tracing armed, replayers
append the exact per-cycle :class:`~repro.obs.events.TraceEvent`
sequence the stepper would have recorded.

The MAC schedule being replayed (one cycle ``c`` of a burst window):

* staging ``u`` pushes message ``M_c`` into its conv queue;
* conv ``u`` pops ``M_{c-1}`` (visible after the 1-cycle FIFO latency)
  and pushes four product tiles;
* accumulator ``j`` pops the product pushed at ``c-1`` from each of
  the four conv->acc queues.

Hence over a window of ``W`` cycles the conv unit consumes the
in-flight head plus the first ``W - 1`` fresh emissions, the
accumulators absorb the in-flight products plus the products of the
first ``W - 1`` conv consumptions, and exactly one message per queue
remains in flight afterwards — the boundary invariant the eligibility
check verifies before and the engine re-establishes after.

The pad/pool schedule (one period of 4 cycles at base ``b``):

* at ``b``: staging pushes the staged message into the pad/pool queue
  and quad-loads the next region (4 ``read_tile`` calls, port A); the
  pad/pool unit pushes its completed tile into the writeback queue;
* at ``b + 1``: the pad/pool unit pops the message (visible after the
  FIFO latency) and computes; the writeback unit pops the tile and
  writes it to the bank (port B);
* at ``b + 2`` / ``b + 3``: every participant sleeps out its ``Tick``
  while the writeback unit stalls empty.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.core.padpool import compute_padpool_tiles
from repro.hls.errors import SimulationTimeout
from repro.hls.fifo import ReadOp, WriteOp
from repro.hls.kernel import KernelState
from repro.obs.events import TraceEvent

#: Smallest window worth vectorizing; below this plain stepping is
#: cheaper than the eligibility scan + batched setup.
MIN_BURST_CYCLES = 4


def hub_supports(obs, *hooks: str) -> bool:
    """True when no hub is attached or it implements every named hook."""
    return obs is None or all(hasattr(obs, hook) for hook in hooks)


class PhaseReplayer:
    """Base class: shared spectator logic + per-phase coverage counters.

    A replayer owns one steady-state pattern.  ``try_burst(sim, limit)``
    returns True when it executed a window (the clock moved); the
    dispatcher stops at the first replayer that does.
    """

    name = "phase"

    def __init__(self, sim):
        self.sim = sim
        #: Windows executed / cycles covered by this replayer (feeds
        #: the per-phase coverage section of the burst benchmarks).
        self.windows = 0
        self.cycles = 0

    def try_burst(self, sim, limit: int) -> bool:
        raise NotImplementedError

    # -- shared helpers --------------------------------------------------------

    def _clamp_spectators(self, sim, now: int, window: int,
                          participants: frozenset,
                          involved: frozenset) -> int:
        """Clamp ``window`` to the first spectator event; 0 declines.

        A spectator (any non-participant kernel) must be provably inert
        for the whole window: a pending op on an involved queue is an
        outside observer (decline), a kernel live this cycle must be
        stepped normally (decline), and a kernel waking mid-window
        bounds the replay.
        """
        for kernel in sim.kernels:
            if id(kernel) in participants or kernel.finished:
                continue
            op = kernel.pending_op
            if (isinstance(op, (ReadOp, WriteOp))
                    and id(op.fifo) in involved):
                return 0
            event = kernel.next_event_cycle(now)
            if event is None:
                continue       # only another kernel can unblock it
            if event <= now:
                return 0       # live non-participant: step normally
            if event - now < window:
                window = event - now
        return window

    def _credit_spectators(self, sim, start: int, window: int,
                           participants: frozenset, obs) -> None:
        """Bulk-credit every spectator's per-cycle accounting."""
        for kernel in sim.kernels:
            if id(kernel) in participants or kernel.finished:
                continue
            state = kernel.state
            if state is KernelState.SLEEPING:
                kernel.stats.sleep_cycles += window
            elif state is KernelState.STALL_EMPTY:
                fifo = kernel.pending_op.fifo
                kernel.stats.stall_empty_cycles += window
                fifo.stats.stall_empty_cycles += window
                if obs is not None:
                    obs.on_stall_span(kernel, fifo.name, "empty",
                                      start, window)
            elif state is KernelState.STALL_FULL:
                fifo = kernel.pending_op.fifo
                kernel.stats.stall_full_cycles += window
                fifo.stats.stall_full_cycles += window
                if obs is not None:
                    obs.on_stall_span(kernel, fifo.name, "full",
                                      start, window)
            elif state is KernelState.AT_BARRIER:
                kernel.stats.barrier_cycles += window
                if obs is not None:
                    obs.on_stall_span(kernel,
                                      kernel.pending_op.barrier.name,
                                      "barrier", start, window)

    def _timeout(self, sim):
        return sim._with_snapshot(SimulationTimeout(
            f"{sim.name}: watchdog expired at cycle {sim.now} — no "
            f"progress for more than {sim.watchdog.budget} cycles"))

    def _finish(self, sim, window: int) -> None:
        sim.bursts += 1
        sim.burst_cycles += window
        self.windows += 1
        self.cycles += window


class MacStreamReplayer(PhaseReplayer):
    """Batched replay of the steady-state MAC stream (Section III-B).

    Eligible when every lane is parked in the streaming posture —

    * staging units at their in-loop ``Tick(1)`` with MAC messages left
      to emit (``StagingStream.streaming``),
    * convolution units at the MAC-branch ``Tick(1)`` with a latched
      region (``ConvUnitPhase.streaming``),
    * accumulator units at the round ``Tick(1)`` with all four input
      streams live (``AccumulatorPhase.streaming``),
    * every pipeline queue in pure producer/consumer flow (exactly one
      visible in-flight MAC message, both ports idle —
      ``PthreadFifo.steady_stream_head``),
    * no sim/FIFO/SRAM fault hooks armed, and every other kernel
      provably inert for the window.

    Region loads still go through ``SramBank.read_tile`` with
    ``sim.now`` staged to the exact emission cycle, so bank stats and
    port-conflict detection are exact.
    """

    name = "mac"

    def __init__(self, sim, staging_kernels, conv_kernels, accum_kernels,
                 conv_qs, acc_qs, banks, tile: int = 4):
        super().__init__(sim)
        self.lanes = lanes = len(staging_kernels)
        self.tile = tile
        self.staging = list(staging_kernels)
        self.convs = list(conv_kernels)
        self.accums = list(accum_kernels)
        self.conv_qs = list(conv_qs)
        self.acc_qs = [list(row) for row in acc_qs]   # [u][j]: conv u -> acc j
        self.banks = list(banks)
        #: ``(fifo, mid-cycle occupancy peak)`` for bulk telemetry
        #: crediting.  A producer registered before its consumer pushes
        #: before the pop within a cycle (the conv queue always; the
        #: acc edge ``(u, j)`` exactly when ``u <= j``), peaking at 2;
        #: the opposite order pops first and peaks at 1.
        self.flows = [(q, 2) for q in self.conv_qs]
        self.flows += [(self.acc_qs[u][j], 2 if u <= j else 1)
                       for u in range(lanes) for j in range(lanes)]
        self._involved = frozenset(id(q) for q, _ in self.flows)
        self._participants = frozenset(
            id(k) for k in (*self.staging, *self.convs, *self.accums))
        #: FIFO port events per burst cycle (the watchdog's progress
        #: signature advances at this rate): per lane one push + one
        #: pop on the conv queue plus ``lanes`` pushes + ``lanes`` pops
        #: across the accumulator queues.
        self.traffic_rate = lanes * (2 + 2 * lanes)
        #: Per-cycle trace template in kernel registration order (the
        #: within-lane order is staging, conv, accum; lanes ascend).
        events = []
        for u in range(lanes):
            events.append((self.staging[u].name, "write",
                           self.conv_qs[u].name))
            events.append((self.convs[u].name, "read",
                           self.conv_qs[u].name))
            for j in range(lanes):
                events.append((self.convs[u].name, "write",
                               self.acc_qs[u][j].name))
            for v in range(lanes):
                events.append((self.accums[u].name, "read",
                               self.acc_qs[v][u].name))
        self._trace_template = tuple(events)

    # -- eligibility -----------------------------------------------------------

    def try_burst(self, sim, limit: int) -> bool:
        """Execute one burst window ending at or before ``limit``.

        Returns True if the clock moved.  Bit- and cycle-identity with
        the reference stepper is the contract; anything not provably in
        the steady-state pattern declines.
        """
        now = sim.now
        lanes = self.lanes
        window = limit - now
        if window < MIN_BURST_CYCLES:
            return False
        if not hub_supports(sim._obs, "on_burst", "on_stall_span"):
            return False
        sleeping = KernelState.SLEEPING
        for u in range(lanes):
            kernel = self.staging[u]
            if kernel.state is not sleeping or kernel.wake_cycle != now:
                return False
            stream = kernel.phase.stream
            if stream is None or not stream.streaming:
                return False
            kernel = self.convs[u]
            if (kernel.state is not sleeping or kernel.wake_cycle != now
                    or not kernel.phase.streaming):
                return False
            kernel = self.accums[u]
            if (kernel.state is not sleeping or kernel.wake_cycle != now
                    or not kernel.phase.streaming):
                return False
            remaining = stream.remaining
            if remaining < 1:
                return False
            if remaining < window:
                window = remaining
        if window < MIN_BURST_CYCLES:
            return False
        heads = []
        for u in range(lanes):
            head = self.conv_qs[u].steady_stream_head(now)
            if head is None or head[0] != "mac":
                return False
            heads.append(head)
            for j in range(lanes):
                entry = self.acc_qs[u][j].steady_stream_head(now)
                if entry is None or entry[0] != "mac":
                    return False
        for bank in self.banks:
            # Region loads go through the hooked read path whose state
            # is per-call: a hooked bank takes the reference stepper.
            if bank.fault_hook is not None:
                return False
        window = self._clamp_spectators(sim, now, window,
                                        self._participants, self._involved)
        if window < MIN_BURST_CYCLES:
            return False
        end = now + window
        if sim.watchdog is not None:
            fire = sim.watchdog.observe_burst(sim, now, end,
                                              self.traffic_rate)
            if fire is not None:
                # Only the check at `now` (before any burst cycle runs)
                # can fire — every later check sees strictly more FIFO
                # traffic and refreshes — so raise without executing,
                # exactly as the stepper would at the top of this cycle.
                raise self._timeout(sim)
        self._execute(sim, now, end, heads)
        return True

    # -- execution -------------------------------------------------------------

    def _execute(self, sim, start: int, end: int, heads: list) -> None:
        lanes = self.lanes
        tile = self.tile
        window = end - start
        last = end - 1
        obs = sim._obs
        tails = []
        contribs = []      # per lane u: (lanes, tile, tile) summed products
        tail_products = []  # per lane u: per j, exact final product (or None)
        for u in range(lanes):
            stream = self.staging[u].phase.stream
            conv_phase = self.convs[u].phase

            def loader(strm, lc, offset):
                # Stage the clock to the emission cycle so bank stats
                # and port-conflict telemetry see the exact cycle the
                # reference stepper would have used.
                saved = sim.now
                sim.now = start + offset
                try:
                    return strm.load_region(lc)
                finally:
                    sim.now = saved

            slices, tail = stream.burst_slices(window, loader)
            tails.append(tail)
            head = heads[u]
            # Combined message sequence: in-flight head + W emissions.
            # Conv consumes rows [0, W); rows [0, W-1) are absorbed by
            # the accumulators inside the window; row W-1's products
            # stay in flight; row W is the new conv-queue tail.
            regions = [conv_phase.region]
            region_idx = []
            lengths = []
            w_parts = [np.array([head[2]], dtype=np.int64)]
            o_parts = [np.array([head[3]], dtype=np.int64)]
            if head[1] is not None:
                regions.append(head[1])
            region_idx.append(len(regions) - 1)
            lengths.append(1)
            for region, w_arr, o_arr in slices:
                if region is not None:
                    regions.append(region)
                region_idx.append(len(regions) - 1)
                lengths.append(len(w_arr))
                w_parts.append(w_arr)
                o_parts.append(o_arr)
            w_all = np.concatenate(w_parts)
            o_all = np.concatenate(o_parts)
            rid = np.repeat(np.array(region_idx), np.array(lengths))
            stacked = np.stack(regions)
            windows = sliding_window_view(stacked, (tile, tile),
                                          axis=(1, 2))   # (R, 5, 5, t, t)
            m = window - 1   # rows summed straight into the accumulators
            oy = o_all[:m] // tile
            ox = o_all[:m] % tile
            picked = windows[rid[:m, None], oy, ox]       # (m, 4, t, t)
            contribs.append(np.einsum('mj,mjab->jab', w_all[:m], picked))
            final_region = regions[rid[m]]
            products = []
            for j in range(lanes):
                weight = int(w_all[m, j])
                if weight == 0:
                    products.append(None)   # bubble: zero weight skipped
                else:
                    fy, fx = divmod(int(o_all[m, j]), tile)
                    products.append(
                        final_region[fy:fy + tile, fx:fx + tile] * weight)
            tail_products.append(products)
            conv_phase.region = final_region
        # Queue turnover: each queue moved one value per cycle; exactly
        # one message per queue remains in flight afterwards.
        acc_heads = []
        for u in range(lanes):
            self.conv_qs[u].burst_replace(tails[u], last, window, 2)
            row = []
            for j in range(lanes):
                row.append(self.acc_qs[u][j].burst_replace(
                    ("mac", u, tail_products[u][j]), last, window,
                    2 if u <= j else 1))
            acc_heads.append(row)
        for j in range(lanes):
            acc = self.accums[j].phase.acc
            for u in range(lanes):
                head_products = acc_heads[u][j][2]
                if head_products is not None:
                    acc += head_products
                acc += contribs[u][j]
        for u in range(lanes):
            kernel = self.staging[u]
            kernel.stats.active_cycles += window
            kernel.stats.items_written += window
            kernel.wake_cycle = end
            kernel = self.convs[u]
            kernel.stats.active_cycles += window
            kernel.stats.items_read += window
            kernel.stats.items_written += window * lanes
            kernel.wake_cycle = end
            kernel = self.accums[u]
            kernel.stats.active_cycles += window
            kernel.stats.items_read += window * lanes
            kernel.wake_cycle = end
        self._credit_spectators(sim, start, window, self._participants, obs)
        if sim.trace:
            append = sim.events.append
            for cycle in range(start, end):
                for source, kind, detail in self._trace_template:
                    append(TraceEvent(cycle, source, kind, detail))
        if obs is not None:
            obs.on_burst(sim, start, end, self.flows)
        sim.now = end
        self._finish(sim, window)


class PadPoolReplayer(PhaseReplayer):
    """Batched replay of the pad/pool chain's period-4 steady state.

    A lane participates when its whole chain is phase-aligned at the
    period base: staging parked at its ``Tick(4)`` with a staged
    message pending and loads remaining, the pad/pool unit parked at
    its ``Tick(3)`` with a computed tile pending, the writeback unit
    stalled empty on its queue, and both queues empty with idle ports.
    Misaligned lanes (instruction warm-up/tail, lanes that finished
    early) simply fail the posture check and are handled as spectators
    — a *live* spectator declines the window.

    The tile maxima are computed with one batched sliding-window pass
    per (win, stride) group per period (:func:`compute_padpool_tiles`,
    differentially tested against the scalar reference); queue traffic
    and bank reads/writes run through the real ``push``/``pop``/
    ``read_tile``/``write_tile`` paths with ``sim.now`` staged to the
    exact cycle, so stats, port trackers and telemetry hooks see the
    identical sequence.
    """

    name = "padpool"

    #: Cycles per pipeline period (staging Tick(4) == pad/pool
    #: read->write cadence with the paper's 4 MAX units).
    PERIOD = 4

    def __init__(self, sim, staging_kernels, padpool_kernels,
                 writeback_kernels, padpool_qs, writeback_qs, banks,
                 tile: int = 4):
        super().__init__(sim)
        self.lanes = len(staging_kernels)
        self.tile = tile
        self.staging = list(staging_kernels)
        self.padpools = list(padpool_kernels)
        self.writebacks = list(writeback_kernels)
        self.padpool_qs = list(padpool_qs)
        self.writeback_qs = list(writeback_qs)
        self.banks = list(banks)

    def try_burst(self, sim, limit: int) -> bool:
        if self.tile != 4:
            # The period-4 cadence is specific to the paper's sizing
            # (tile*tile / MAX_UNITS == 4 == quad-load cycles).
            return False
        now = sim.now
        period = self.PERIOD
        k_max = (limit - now) // period
        if k_max < 1:
            return False
        if not hub_supports(sim._obs, "on_burst_window", "on_stall_span"):
            return False
        sleeping = KernelState.SLEEPING
        stall_empty = KernelState.STALL_EMPTY
        participants = []
        for u in range(self.lanes):
            stg = self.staging[u]
            if stg.state is not sleeping or stg.wake_cycle != now:
                continue
            stream = getattr(stg.phase, "pp_stream", None)
            if stream is None or stream.pending is None:
                continue
            loads = stream.loads_remaining
            if loads < 1:
                continue
            pp = self.padpools[u]
            if (pp.state is not sleeping or pp.wake_cycle != now
                    or pp.phase is None or pp.phase.pending is None):
                continue
            wb = self.writebacks[u]
            op = wb.pending_op
            if (wb.state is not stall_empty or not isinstance(op, ReadOp)
                    or op.fifo is not self.writeback_qs[u]
                    or wb.phase.draining):
                continue
            pq = self.padpool_qs[u]
            wq = self.writeback_qs[u]
            if (pq.occupancy or wq.occupancy
                    or pq.fault_hook is not None
                    or wq.fault_hook is not None
                    or not pq.ports_idle(now) or not wq.ports_idle(now)
                    or pq.depth < 1 or wq.depth < 1):
                continue
            if self.banks[u].fault_hook is not None:
                continue
            participants.append(u)
            if loads < k_max:
                k_max = loads
        if not participants:
            return False
        participant_ids = frozenset(
            id(k) for u in participants
            for k in (self.staging[u], self.padpools[u],
                      self.writebacks[u]))
        involved = frozenset(
            id(q) for u in participants
            for q in (self.padpool_qs[u], self.writeback_qs[u]))
        window = self._clamp_spectators(sim, now, k_max * period,
                                        participant_ids, involved)
        k = window // period
        if k < 1 or k * period < MIN_BURST_CYCLES:
            return False
        window = k * period
        end = now + window
        if sim.watchdog is not None:
            # Traffic the stepper's checks would see: 2 pushes per
            # participant at each period base, 2 pops one cycle later
            # (a check at cycle c counts only cycles before c).
            events = 2 * len(participants)
            prefix = (0, events, 2 * events, 2 * events)
            fire = sim.watchdog.observe_window(
                sim, now, end,
                lambda off: (off // period) * 2 * events
                + prefix[off % period])
            if fire is not None:
                if fire == now:
                    raise self._timeout(sim)
                return False   # mid-window fire: the stepper reproduces it
        self._execute(sim, now, end, participants)
        return True

    def _execute(self, sim, start: int, end: int,
                 participants: list) -> None:
        period = self.PERIOD
        k = (end - start) // period
        window = end - start
        obs = sim._obs
        trace = sim.trace
        tile = self.tile
        streams = {u: self.staging[u].phase.pp_stream for u in participants}
        phases = {u: self.padpools[u].phase for u in participants}
        if trace:
            base_events = []
            pop_events = []
            for u in participants:
                base_events.append((self.staging[u].name, "write",
                                    self.padpool_qs[u].name))
                base_events.append((self.padpools[u].name, "write",
                                    self.writeback_qs[u].name))
                pop_events.append((self.padpools[u].name, "read",
                                   self.padpool_qs[u].name))
                pop_events.append((self.writebacks[u].name, "read",
                                   self.writeback_qs[u].name))
        for p in range(k):
            base = start + p * period
            sim.now = base
            for u in participants:
                stream = streams[u]
                self.padpool_qs[u].push(base, stream.take())
                stream.load_next()
                self.writeback_qs[u].push(base, phases[u].take())
            sim.now = base + 1
            popped = []
            for u in participants:
                msg = self.padpool_qs[u].pop(base + 1)
                popped.append((u, msg))
                addr, values = self.writeback_qs[u].pop(base + 1)
                self.banks[u].write_tile(addr, values)
            # Batched compute of this period's tiles, grouped by window
            # parameterization (constant per lane within an instruction
            # but PAD and POOL lanes can coexist).
            by_params = {}
            for u, msg in popped:
                by_params.setdefault((msg[3], msg[4]), []).append((u, msg))
            for (win, stride), items in by_params.items():
                regions = np.stack([msg[0] for _, msg in items])
                offs_y = np.array([msg[1] for _, msg in items])
                offs_x = np.array([msg[2] for _, msg in items])
                outs = compute_padpool_tiles(regions, offs_y, offs_x,
                                             win, stride, tile)
                for (u, msg), out in zip(items, outs):
                    phases[u].pending = (msg[5], out.astype(np.int16))
            if trace:
                append = sim.events.append
                for source, kind, detail in base_events:
                    append(TraceEvent(base, source, kind, detail))
                for source, kind, detail in pop_events:
                    append(TraceEvent(base + 1, source, kind, detail))
        sim.now = start
        runs = []
        for u in participants:
            stg = self.staging[u]
            stg.stats.active_cycles += k
            stg.stats.sleep_cycles += 3 * k
            stg.stats.items_written += k
            stg.wake_cycle = end
            pp = self.padpools[u]
            pp.stats.active_cycles += 2 * k
            pp.stats.sleep_cycles += 2 * k
            pp.stats.items_read += k
            pp.stats.items_written += k
            pp.wake_cycle = end
            wb = self.writebacks[u]
            wq = self.writeback_qs[u]
            wb.stats.active_cycles += k
            wb.stats.items_read += k
            wb.stats.stall_empty_cycles += 3 * k
            wq.stats.stall_empty_cycles += 3 * k
            if obs is not None:
                span = obs.on_stall_span
                wb_runs = []
                for p in range(k):
                    base = start + p * period
                    # Stalls at base and base+2..base+3; active base+1.
                    span(wb, wq.name, "empty", base, 1)
                    span(wb, wq.name, "empty", base + 2, 2)
                    wb_runs.append(("stall_empty", base))
                    wb_runs.append(("sleeping", base + 1))
                    wb_runs.append(("stall_empty", base + 2))
                runs.append((wb, tuple(wb_runs)))
        self._credit_spectators(sim, start, window, frozenset(
            id(k_) for u in participants
            for k_ in (self.staging[u], self.padpools[u],
                       self.writebacks[u])), obs)
        if obs is not None:
            involved_names = [q.name for u in participants
                              for q in (self.padpool_qs[u],
                                        self.writeback_qs[u])]

            def occ_at(cycle, names=tuple(involved_names)):
                # End-of-cycle occupancy: 1 right after the period-base
                # pushes, 0 once the next cycle's pops drained them.
                occ = 1 if (cycle - start) % period == 0 else 0
                return {name: occ for name in names}

            obs.on_burst_window(sim, start, end, runs=runs, occ_at=occ_at)
        sim.now = end
        self._finish(sim, window)


class WritebackDrainReplayer(PhaseReplayer):
    """Replay of writeback units draining a tile backlog.

    A lane participates when its writeback unit is parked at the
    mid-drain ``Tick(1)`` (``WritebackPhase.draining``) with a queue
    backlog poppable on consecutive cycles
    (``PthreadFifo.drain_run``).  Each replayed cycle performs the
    real staged-clock pop and ``write_tile``.  Producers must be quiet
    for the window — a producer stalled full on (or about to push
    into) a drained queue is a live spectator and declines.

    The deep backlogs that make this pattern worth vectorizing come
    from configurations with large writeback queues; the paper-sized
    depth-2 queues rarely accumulate more than
    :data:`MIN_BURST_CYCLES` entries, which is exactly why the pattern
    is kept structurally separate from the pad/pool chain replay.
    """

    name = "writeback"

    def __init__(self, sim, writeback_kernels, writeback_qs, banks):
        super().__init__(sim)
        self.lanes = len(writeback_kernels)
        self.writebacks = list(writeback_kernels)
        self.writeback_qs = list(writeback_qs)
        self.banks = list(banks)

    def try_burst(self, sim, limit: int) -> bool:
        now = sim.now
        window = limit - now
        if window < MIN_BURST_CYCLES:
            return False
        if not hub_supports(sim._obs, "on_burst_window", "on_stall_span"):
            return False
        sleeping = KernelState.SLEEPING
        participants = []
        for u in range(self.lanes):
            wb = self.writebacks[u]
            if (wb.state is not sleeping or wb.wake_cycle != now
                    or wb.phase is None or not wb.phase.draining):
                continue
            wq = self.writeback_qs[u]
            run = wq.drain_run(now)
            if run < 1 or wq._last_push_cycle >= now:
                continue
            if self.banks[u].fault_hook is not None:
                continue
            participants.append(u)
            if run < window:
                window = run
        if not participants or window < MIN_BURST_CYCLES:
            return False
        participant_ids = frozenset(id(self.writebacks[u])
                                    for u in participants)
        involved = frozenset(id(self.writeback_qs[u])
                             for u in participants)
        window = self._clamp_spectators(sim, now, window,
                                        participant_ids, involved)
        if window < MIN_BURST_CYCLES:
            return False
        end = now + window
        if sim.watchdog is not None:
            pops = len(participants)
            fire = sim.watchdog.observe_window(
                sim, now, end, lambda off: off * pops)
            if fire is not None:
                if fire == now:
                    raise self._timeout(sim)
                return False
        self._execute(sim, now, end, participants)
        return True

    def _execute(self, sim, start: int, end: int,
                 participants: list) -> None:
        window = end - start
        obs = sim._obs
        trace = sim.trace
        occ0 = {self.writeback_qs[u].name: self.writeback_qs[u].occupancy
                for u in participants}
        for cycle in range(start, end):
            sim.now = cycle
            for u in participants:
                addr, values = self.writeback_qs[u].pop(cycle)
                self.banks[u].write_tile(addr, values)
                if trace:
                    sim.events.append(TraceEvent(
                        cycle, self.writebacks[u].name, "read",
                        self.writeback_qs[u].name))
        sim.now = start
        for u in participants:
            wb = self.writebacks[u]
            wb.stats.active_cycles += window
            wb.stats.items_read += window
            wb.wake_cycle = end
        self._credit_spectators(sim, start, window,
                                frozenset(id(self.writebacks[u])
                                          for u in participants), obs)
        if obs is not None:
            def occ_at(cycle):
                done = cycle - start + 1   # pops completed by end of cycle
                return {name: occ - done for name, occ in occ0.items()}

            obs.on_burst_window(sim, start, end, occ_at=occ_at)
        sim.now = end
        self._finish(sim, window)


class BurstPipeline:
    """Per-instance dispatcher over the phase replayers.

    Registered with the simulator via
    :meth:`repro.hls.sim.Simulator.register_burst_pipeline`; the
    scheduler calls :meth:`try_burst` on live cycles after the
    cycle-warp fast path declined, and the first replayer whose
    steady-state pattern matches executes the window.

    The pad/pool and writeback replayers are created only when the
    accelerator passes the corresponding kernels/queues (keyword
    arguments), so MAC-only construction sites keep working.
    """

    def __init__(self, sim, staging_kernels, conv_kernels, accum_kernels,
                 conv_qs, acc_qs, banks, tile: int = 4,
                 padpool_kernels=None, writeback_kernels=None,
                 padpool_qs=None, writeback_qs=None):
        self.sim = sim
        self.mac = MacStreamReplayer(sim, staging_kernels, conv_kernels,
                                     accum_kernels, conv_qs, acc_qs,
                                     banks, tile)
        self.replayers: list[PhaseReplayer] = [self.mac]
        self.padpool = None
        self.writeback = None
        if padpool_kernels is not None:
            self.padpool = PadPoolReplayer(
                sim, staging_kernels, padpool_kernels, writeback_kernels,
                padpool_qs, writeback_qs, banks, tile)
            self.replayers.append(self.padpool)
        if writeback_kernels is not None:
            self.writeback = WritebackDrainReplayer(
                sim, writeback_kernels, writeback_qs, banks)
            self.replayers.append(self.writeback)

    def try_burst(self, sim, limit: int) -> bool:
        """Dispatch to the first replayer whose pattern matches."""
        for replayer in self.replayers:
            if replayer.try_burst(sim, limit):
                return True
        return False

    def coverage(self) -> dict:
        """Per-phase window/cycle counters (benchmark schema section)."""
        return {replayer.name: {"windows": replayer.windows,
                                "cycles": replayer.cycles}
                for replayer in self.replayers}
