"""Burst-mode vectorized execution of steady-state MAC streams.

The paper's accelerator earns its throughput in one regime: an IFM
region is latched, packed weights stream at one group per cycle, and
up to 64 multiplies fire per convolution unit per cycle with fully
regular dataflow (Section III-B).  The cycle-accurate model pays
Python-generator dispatch for every one of those cycles — PR 3's
cycle-warp eliminates *dead* windows, but a compute-bound layer has
almost none.

This module adds the third scheduler mode: when every lane of an
accelerator instance is parked in the steady-state posture —

* staging units at their in-loop ``Tick(1)`` with MAC messages left to
  emit (``StagingStream.streaming``),
* convolution units at the MAC-branch ``Tick(1)`` with a latched
  region (``ConvUnitPhase.streaming``),
* accumulator units at the round ``Tick(1)`` with all four input
  streams live (``AccumulatorPhase.streaming``),
* every pipeline queue in pure producer/consumer flow (exactly one
  visible in-flight MAC message, both ports idle —
  ``PthreadFifo.steady_stream_head``),
* no sim/FIFO/SRAM fault hooks armed, and every other kernel provably
  inert for the window —

the remainder of the window is executed as batched numpy ops
(``einsum`` over the 8x8 regions; zero weights contribute exactly the
zero the scalar bubble skip would) and every per-cycle side effect is
bulk-credited: kernel cycle counters, FIFO port/stall stats, occupancy
integrals, timeline samples and watchdog checks land bit- and
cycle-identically to the reference stepper.  Region loads still go
through ``SramBank.read_tile`` with ``sim.now`` staged to the exact
emission cycle, so bank stats and port-conflict detection are exact.

The schedule being replayed (one cycle ``c`` of a burst window):

* staging ``u`` pushes message ``M_c`` into its conv queue;
* conv ``u`` pops ``M_{c-1}`` (visible after the 1-cycle FIFO latency)
  and pushes four product tiles;
* accumulator ``j`` pops the product pushed at ``c-1`` from each of
  the four conv->acc queues.

Hence over a window of ``W`` cycles the conv unit consumes the
in-flight head plus the first ``W - 1`` fresh emissions, the
accumulators absorb the in-flight products plus the products of the
first ``W - 1`` conv consumptions, and exactly one message per queue
remains in flight afterwards — the boundary invariant the eligibility
check verifies before and the engine re-establishes after.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.hls.errors import SimulationTimeout
from repro.hls.fifo import ReadOp, WriteOp
from repro.hls.kernel import KernelState

#: Smallest window worth vectorizing; below this plain stepping is
#: cheaper than the eligibility scan + batched setup.
MIN_BURST_CYCLES = 4


class BurstPipeline:
    """Burst-eligibility detector + vectorized executor for one instance.

    Registered with the simulator via
    :meth:`repro.hls.sim.Simulator.register_burst_pipeline`; the
    scheduler calls :meth:`try_burst` on live cycles after the
    cycle-warp fast path declined.
    """

    def __init__(self, sim, staging_kernels, conv_kernels, accum_kernels,
                 conv_qs, acc_qs, banks, tile: int = 4):
        self.sim = sim
        self.lanes = lanes = len(staging_kernels)
        self.tile = tile
        self.staging = list(staging_kernels)
        self.convs = list(conv_kernels)
        self.accums = list(accum_kernels)
        self.conv_qs = list(conv_qs)
        self.acc_qs = [list(row) for row in acc_qs]   # [u][j]: conv u -> acc j
        self.banks = list(banks)
        #: ``(fifo, mid-cycle occupancy peak)`` for bulk telemetry
        #: crediting.  A producer registered before its consumer pushes
        #: before the pop within a cycle (the conv queue always; the
        #: acc edge ``(u, j)`` exactly when ``u <= j``), peaking at 2;
        #: the opposite order pops first and peaks at 1.
        self.flows = [(q, 2) for q in self.conv_qs]
        self.flows += [(self.acc_qs[u][j], 2 if u <= j else 1)
                       for u in range(lanes) for j in range(lanes)]
        self._involved = frozenset(id(q) for q, _ in self.flows)
        self._participants = frozenset(
            id(k) for k in (*self.staging, *self.convs, *self.accums))
        #: FIFO port events per burst cycle (the watchdog's progress
        #: signature advances at this rate): per lane one push + one
        #: pop on the conv queue plus ``lanes`` pushes + ``lanes`` pops
        #: across the accumulator queues.
        self.traffic_rate = lanes * (2 + 2 * lanes)

    # -- eligibility -----------------------------------------------------------

    def try_burst(self, sim, limit: int) -> bool:
        """Execute one burst window ending at or before ``limit``.

        Returns True if the clock moved.  Bit- and cycle-identity with
        the reference stepper is the contract; anything not provably in
        the steady-state pattern declines.
        """
        now = sim.now
        lanes = self.lanes
        window = limit - now
        if window < MIN_BURST_CYCLES:
            return False
        sleeping = KernelState.SLEEPING
        for u in range(lanes):
            kernel = self.staging[u]
            if kernel.state is not sleeping or kernel.wake_cycle != now:
                return False
            stream = kernel.phase.stream
            if stream is None or not stream.streaming:
                return False
            kernel = self.convs[u]
            if (kernel.state is not sleeping or kernel.wake_cycle != now
                    or not kernel.phase.streaming):
                return False
            kernel = self.accums[u]
            if (kernel.state is not sleeping or kernel.wake_cycle != now
                    or not kernel.phase.streaming):
                return False
            remaining = stream.remaining
            if remaining < 1:
                return False
            if remaining < window:
                window = remaining
        if window < MIN_BURST_CYCLES:
            return False
        heads = []
        for u in range(lanes):
            head = self.conv_qs[u].steady_stream_head(now)
            if head is None or head[0] != "mac":
                return False
            heads.append(head)
            for j in range(lanes):
                entry = self.acc_qs[u][j].steady_stream_head(now)
                if entry is None or entry[0] != "mac":
                    return False
        for bank in self.banks:
            # Region loads go through the hooked read path whose state
            # is per-call: a hooked bank takes the reference stepper.
            if bank.fault_hook is not None:
                return False
        for kernel in sim.kernels:
            if id(kernel) in self._participants or kernel.finished:
                continue
            op = kernel.pending_op
            if (isinstance(op, (ReadOp, WriteOp))
                    and id(op.fifo) in self._involved):
                return False   # an outside observer of a burst queue
            event = kernel.next_event_cycle(now)
            if event is None:
                continue       # only another kernel can unblock it
            if event <= now:
                return False   # live non-participant: step normally
            if event - now < window:
                window = event - now
        if window < MIN_BURST_CYCLES:
            return False
        end = now + window
        if sim.watchdog is not None:
            fire = sim.watchdog.observe_burst(sim, now, end,
                                              self.traffic_rate)
            if fire is not None:
                # Only the check at `now` (before any burst cycle runs)
                # can fire — every later check sees strictly more FIFO
                # traffic and refreshes — so raise without executing,
                # exactly as the stepper would at the top of this cycle.
                raise sim._with_snapshot(SimulationTimeout(
                    f"{sim.name}: watchdog expired at cycle {sim.now} — no "
                    f"progress for more than {sim.watchdog.budget} cycles"))
        self._execute(sim, now, end, heads)
        return True

    # -- execution -------------------------------------------------------------

    def _execute(self, sim, start: int, end: int, heads: list) -> None:
        lanes = self.lanes
        tile = self.tile
        window = end - start
        last = end - 1
        obs = sim._obs
        tails = []
        contribs = []      # per lane u: (lanes, tile, tile) summed products
        tail_products = []  # per lane u: per j, exact final product (or None)
        for u in range(lanes):
            stream = self.staging[u].phase.stream
            conv_phase = self.convs[u].phase

            def loader(strm, lc, offset):
                # Stage the clock to the emission cycle so bank stats
                # and port-conflict telemetry see the exact cycle the
                # reference stepper would have used.
                saved = sim.now
                sim.now = start + offset
                try:
                    return strm.load_region(lc)
                finally:
                    sim.now = saved

            slices, tail = stream.burst_slices(window, loader)
            tails.append(tail)
            head = heads[u]
            # Combined message sequence: in-flight head + W emissions.
            # Conv consumes rows [0, W); rows [0, W-1) are absorbed by
            # the accumulators inside the window; row W-1's products
            # stay in flight; row W is the new conv-queue tail.
            regions = [conv_phase.region]
            region_idx = []
            lengths = []
            w_parts = [np.array([head[2]], dtype=np.int64)]
            o_parts = [np.array([head[3]], dtype=np.int64)]
            if head[1] is not None:
                regions.append(head[1])
            region_idx.append(len(regions) - 1)
            lengths.append(1)
            for region, w_arr, o_arr in slices:
                if region is not None:
                    regions.append(region)
                region_idx.append(len(regions) - 1)
                lengths.append(len(w_arr))
                w_parts.append(w_arr)
                o_parts.append(o_arr)
            w_all = np.concatenate(w_parts)
            o_all = np.concatenate(o_parts)
            rid = np.repeat(np.array(region_idx), np.array(lengths))
            stacked = np.stack(regions)
            windows = sliding_window_view(stacked, (tile, tile),
                                          axis=(1, 2))   # (R, 5, 5, t, t)
            m = window - 1   # rows summed straight into the accumulators
            oy = o_all[:m] // tile
            ox = o_all[:m] % tile
            picked = windows[rid[:m, None], oy, ox]       # (m, 4, t, t)
            contribs.append(np.einsum('mj,mjab->jab', w_all[:m], picked))
            final_region = regions[rid[m]]
            products = []
            for j in range(lanes):
                weight = int(w_all[m, j])
                if weight == 0:
                    products.append(None)   # bubble: zero weight skipped
                else:
                    fy, fx = divmod(int(o_all[m, j]), tile)
                    products.append(
                        final_region[fy:fy + tile, fx:fx + tile] * weight)
            tail_products.append(products)
            conv_phase.region = final_region
        # Queue turnover: each queue moved one value per cycle; exactly
        # one message per queue remains in flight afterwards.
        acc_heads = []
        for u in range(lanes):
            self.conv_qs[u].burst_replace(tails[u], last, window, 2)
            row = []
            for j in range(lanes):
                row.append(self.acc_qs[u][j].burst_replace(
                    ("mac", u, tail_products[u][j]), last, window,
                    2 if u <= j else 1))
            acc_heads.append(row)
        for j in range(lanes):
            acc = self.accums[j].phase.acc
            for u in range(lanes):
                head_products = acc_heads[u][j][2]
                if head_products is not None:
                    acc += head_products
                acc += contribs[u][j]
        for u in range(lanes):
            kernel = self.staging[u]
            kernel.stats.active_cycles += window
            kernel.stats.items_written += window
            kernel.wake_cycle = end
            kernel = self.convs[u]
            kernel.stats.active_cycles += window
            kernel.stats.items_read += window
            kernel.stats.items_written += window * lanes
            kernel.wake_cycle = end
            kernel = self.accums[u]
            kernel.stats.active_cycles += window
            kernel.stats.items_read += window * lanes
            kernel.wake_cycle = end
        for kernel in sim.kernels:
            if id(kernel) in self._participants or kernel.finished:
                continue
            state = kernel.state
            if state is KernelState.SLEEPING:
                kernel.stats.sleep_cycles += window
            elif state is KernelState.STALL_EMPTY:
                fifo = kernel.pending_op.fifo
                kernel.stats.stall_empty_cycles += window
                fifo.stats.stall_empty_cycles += window
                if obs is not None:
                    obs.on_stall_span(kernel, fifo.name, "empty",
                                      start, window)
            elif state is KernelState.STALL_FULL:
                fifo = kernel.pending_op.fifo
                kernel.stats.stall_full_cycles += window
                fifo.stats.stall_full_cycles += window
                if obs is not None:
                    obs.on_stall_span(kernel, fifo.name, "full",
                                      start, window)
            elif state is KernelState.AT_BARRIER:
                kernel.stats.barrier_cycles += window
                if obs is not None:
                    obs.on_stall_span(kernel, kernel.pending_op.barrier.name,
                                      "barrier", start, window)
        if obs is not None:
            obs.on_burst(sim, start, end, self.flows)
        sim.now = end
        sim.bursts += 1
        sim.burst_cycles += window
