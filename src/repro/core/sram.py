"""On-FPGA SRAM banks (Fig. 3, orange blocks).

Four dual-port banks per accelerator instance. Reads use port A (one
tile — 16 values — per cycle, consumed by the data-staging units);
writes use port B (one tile per cycle, from the write-to-memory units
or the DMA engine). The paper modified the generated RTL precisely to
obtain this exclusive-port arrangement (Section IV-A, change #3).

Addressing is tile-granular: address ``a`` names the 16-value word
``storage[16a : 16a+16]``. The bank also supports byte/value-granular
streaming reads for the packed weight region.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tile import TILE

#: Default bank capacity (values = bytes) for paper-scale models:
#: 512 KiB per bank; four banks per instance is ~2 MiB, which together
#: with scratchpads lands near the paper's 49% RAM utilization.
DEFAULT_BANK_CAPACITY = 512 * 1024


@dataclass
class SramStats:
    """Traffic counters for one bank."""

    tile_reads: int = 0
    tile_writes: int = 0
    stream_values_read: int = 0
    dma_values_written: int = 0
    dma_values_read: int = 0


class SramBank:
    """One on-FPGA SRAM bank with tile-wide ports.

    Parameters
    ----------
    name:
        Bank identifier (``bank0`` .. ``bank3``).
    capacity_values:
        Total 8-bit values the bank can hold. Must be a multiple of the
        tile word size (``tile * tile``).
    tile:
        Tile edge length (4 in the paper).
    """

    def __init__(self, name: str, capacity_values: int, tile: int = TILE):
        self.word_values = tile * tile
        if capacity_values < self.word_values:
            raise ValueError(
                f"bank {name!r}: capacity {capacity_values} below one word")
        if capacity_values % self.word_values:
            raise ValueError(
                f"bank {name!r}: capacity {capacity_values} not a multiple "
                f"of the {self.word_values}-value word")
        self.name = name
        self.tile = tile
        self.capacity_values = capacity_values
        self.words = capacity_values // self.word_values
        self.storage = np.zeros(capacity_values, dtype=np.int16)
        self.stats = SramStats()
        #: Optional fault-injection hook applied to every read path
        #: (duck-typed; see :mod:`repro.faults.hooks`). ``None`` on the
        #: clean path, where the guard costs one identity test.
        self.fault_hook = None
        #: Optional telemetry hub (duck-typed; see
        #: :mod:`repro.obs.metrics`); counts per-port traffic and
        #: same-cycle port conflicts. Observation only, ``None`` on the
        #: clean path.
        self.obs = None

    # -- tile-wide ports ------------------------------------------------------

    def read_tile(self, addr: int) -> np.ndarray:
        """Port A: read the 16-value word at tile address ``addr``."""
        self._check_addr(addr)
        self.stats.tile_reads += 1
        if self.obs is not None:
            self.obs.on_tile_read(self)
        base = addr * self.word_values
        data = self.storage[base:base + self.word_values].copy()
        if self.fault_hook is not None:
            data = self.fault_hook.on_read(self, base, data)
        return data

    def write_tile(self, addr: int, values: np.ndarray) -> None:
        """Port B: write a 16-value word at tile address ``addr``."""
        self._check_addr(addr)
        values = np.asarray(values, dtype=np.int16)
        if values.size != self.word_values:
            raise ValueError(
                f"bank {self.name!r}: tile write needs {self.word_values} "
                f"values, got {values.size}")
        self.stats.tile_writes += 1
        if self.obs is not None:
            self.obs.on_tile_write(self)
        base = addr * self.word_values
        self.storage[base:base + self.word_values] = values.reshape(-1)

    # -- packed-weight streaming (value granular, port A) ----------------------

    def read_stream(self, value_addr: int, count: int) -> np.ndarray:
        """Read ``count`` raw values starting at value address ``value_addr``.

        Used for the packed weight region; the consumer charges
        ``ceil(count / word_values)`` cycles for the transfer.
        """
        if value_addr < 0 or value_addr + count > self.capacity_values:
            raise IndexError(
                f"bank {self.name!r}: stream [{value_addr}, "
                f"{value_addr + count}) outside capacity "
                f"{self.capacity_values}")
        self.stats.stream_values_read += count
        if self.obs is not None:
            self.obs.on_stream_read(self, count)
        data = self.storage[value_addr:value_addr + count].copy()
        if self.fault_hook is not None:
            data = self.fault_hook.on_read(self, value_addr, data)
        return data

    def stream_cycles(self, count: int) -> int:
        """Port cycles to stream ``count`` packed values."""
        return -(-count // self.word_values)

    # -- DMA access (bulk, used between compute phases) -------------------------

    def dma_write(self, value_addr: int, values: np.ndarray) -> None:
        """Bulk store from the DMA engine (off-chip -> bank)."""
        values = np.asarray(values, dtype=np.int16).reshape(-1)
        if value_addr < 0 or value_addr + values.size > self.capacity_values:
            raise IndexError(
                f"bank {self.name!r}: DMA write [{value_addr}, "
                f"{value_addr + values.size}) outside capacity")
        self.storage[value_addr:value_addr + values.size] = values
        self.stats.dma_values_written += values.size
        if self.obs is not None:
            self.obs.on_bank_dma_write(self, values.size)

    def dma_read(self, value_addr: int, count: int) -> np.ndarray:
        """Bulk load by the DMA engine (bank -> off-chip)."""
        if value_addr < 0 or value_addr + count > self.capacity_values:
            raise IndexError(
                f"bank {self.name!r}: DMA read [{value_addr}, "
                f"{value_addr + count}) outside capacity")
        self.stats.dma_values_read += count
        if self.obs is not None:
            self.obs.on_bank_dma_read(self, count)
        data = self.storage[value_addr:value_addr + count].copy()
        if self.fault_hook is not None:
            data = self.fault_hook.on_read(self, value_addr, data)
        return data

    def clear(self) -> None:
        """Zero the whole bank (power-on state)."""
        self.storage[:] = 0

    # -- internals ---------------------------------------------------------------

    def _check_addr(self, addr: int) -> None:
        if addr < 0 or addr >= self.words:
            raise IndexError(
                f"bank {self.name!r}: tile address {addr} outside "
                f"[0, {self.words})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SramBank({self.name!r}, {self.capacity_values} values)"


def make_banks(count: int, capacity_values: int, tile: int = TILE,
               prefix: str = "bank") -> list[SramBank]:
    """Create the accelerator's bank set (four in the paper)."""
    return [SramBank(f"{prefix}{i}", capacity_values, tile)
            for i in range(count)]
