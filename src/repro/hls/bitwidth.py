"""Bitwidth minimization (range and bitmask analysis).

The paper lists "automated bitwidth minimization [10]" among its primary
HLS constraints (Section IV-A); reference [10] is Gort & Anderson's
range/bitmask analysis. This module reproduces the *observable* part of
that pass for our purposes:

* static helpers computing the minimal width for a known value range;
* a dynamic :class:`BitwidthAnalyzer` that records the values flowing
  through named signals during simulation and reports the minimal
  widths that would have sufficed — exactly the data the area model
  needs to size registers, FIFOs and functional units.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hls.errors import BitwidthOverflow


def bits_for_unsigned(max_value: int) -> int:
    """Minimal unsigned width holding ``0 .. max_value`` (at least 1)."""
    if max_value < 0:
        raise ValueError(f"unsigned range cannot include {max_value}")
    return max(1, max_value.bit_length())


def bits_for_signed(lo: int, hi: int) -> int:
    """Minimal two's-complement width holding ``lo .. hi`` (at least 1)."""
    if lo > hi:
        raise ValueError(f"empty range [{lo}, {hi}]")
    width = 1
    while not (-(1 << (width - 1)) <= lo and hi <= (1 << (width - 1)) - 1):
        width += 1
    return width


def bits_for_range(lo: int, hi: int) -> int:
    """Minimal width for ``lo .. hi``: unsigned if ``lo >= 0``, else signed."""
    if lo >= 0:
        return bits_for_unsigned(hi)
    return bits_for_signed(lo, hi)


def mask_known_zero_bits(values: list[int]) -> int:
    """Bitmask analysis: bits that are zero across all observed values.

    Returns a mask with 1s in positions that were 0 in *every* value —
    the bits a bitmask analysis would prove constant and remove. Only
    meaningful for non-negative values.
    """
    if not values:
        return ~0
    if any(v < 0 for v in values):
        raise ValueError("bitmask analysis requires non-negative values")
    union = 0
    for value in values:
        union |= value
    width = max(1, union.bit_length())
    return ~union & ((1 << width) - 1)


@dataclass
class SignalRange:
    """Observed dynamic range of one named signal."""

    lo: int
    hi: int
    samples: int = 0

    @property
    def width(self) -> int:
        return bits_for_range(self.lo, self.hi)


class BitwidthAnalyzer:
    """Record signal values during simulation; report minimal widths.

    Optionally enforces *declared* widths: if ``declare`` was called for
    a signal, any recorded value outside the declared range raises
    :class:`~repro.hls.errors.BitwidthOverflow` — catching the class of
    bug that silently truncates in real hardware.
    """

    def __init__(self):
        self._ranges: dict[str, SignalRange] = {}
        self._declared: dict[str, int] = {}

    def declare(self, signal: str, width: int, signed: bool = True) -> None:
        """Declare ``signal`` to be ``width`` bits wide."""
        if width < 1:
            raise ValueError(f"signal {signal!r}: width must be >= 1")
        self._declared[signal] = width if signed else -width

    def record(self, signal: str, value: int) -> None:
        """Record one observed ``value`` on ``signal``."""
        declared = self._declared.get(signal)
        if declared is not None:
            self._check_declared(signal, value, declared)
        current = self._ranges.get(signal)
        if current is None:
            self._ranges[signal] = SignalRange(value, value, 1)
        else:
            current.lo = min(current.lo, value)
            current.hi = max(current.hi, value)
            current.samples += 1

    def width(self, signal: str) -> int:
        """Minimal width for the observed range of ``signal``."""
        if signal not in self._ranges:
            raise KeyError(f"no values recorded for signal {signal!r}")
        return self._ranges[signal].width

    def range_of(self, signal: str) -> SignalRange:
        return self._ranges[signal]

    def signals(self) -> list[str]:
        return sorted(self._ranges)

    def total_register_bits(self) -> int:
        """Sum of minimal widths across all signals (one register each)."""
        return sum(r.width for r in self._ranges.values())

    def savings_vs(self, default_width: int = 32) -> int:
        """Register bits saved relative to naive ``default_width`` signals."""
        return sum(max(0, default_width - r.width)
                   for r in self._ranges.values())

    def report(self) -> dict[str, int]:
        """Map of signal name to minimized width."""
        return {name: r.width for name, r in sorted(self._ranges.items())}

    def _check_declared(self, signal: str, value: int, declared: int) -> None:
        signed = declared > 0
        width = abs(declared)
        if signed:
            lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
        else:
            lo, hi = 0, (1 << width) - 1
        if not lo <= value <= hi:
            raise BitwidthOverflow(
                f"signal {signal!r}: value {value} exceeds declared "
                f"{'signed' if signed else 'unsigned'} {width}-bit range")
