"""Exception types for the HLS simulation substrate.

Every error raised by :mod:`repro.hls` derives from :class:`HlsError` so
callers can catch substrate failures with a single ``except`` clause.
"""

from __future__ import annotations


class HlsError(Exception):
    """Base class for all errors raised by the HLS substrate.

    When the simulator can describe the system state at the moment of
    failure, it attaches a :class:`~repro.hls.sim.SimSnapshot` as the
    :attr:`snapshot` attribute (``None`` otherwise) — per-kernel states
    and FIFO occupancies for post-mortem diagnosis.
    """

    snapshot = None


class SimulationDeadlock(HlsError):
    """All live kernels are blocked and no queued data can unblock them.

    Raised by :meth:`repro.hls.sim.Simulator.run` when forward progress is
    provably impossible: every non-finished kernel is stalled on a FIFO
    read/write or a barrier, and no in-flight FIFO writes remain that
    could become visible on a later cycle.
    """


class SimulationTimeout(HlsError):
    """The simulation exceeded its ``max_cycles`` budget."""


class CombinationalLoop(HlsError):
    """A kernel executed too many operations without advancing the clock.

    In hardware, a pipelined loop iteration takes at least one cycle. A
    kernel that keeps reading/writing FIFOs without ever yielding a
    :class:`~repro.hls.sim.Tick` would model a combinational loop; the
    scheduler refuses to simulate it.
    """


class FifoWidthError(HlsError):
    """A value pushed into a FIFO does not fit the FIFO's bit width."""


class FifoPortConflict(HlsError):
    """Two kernels attempted to use the same FIFO port in one cycle.

    Each FIFO models one read port and one write port, matching the
    LUT-RAM FIFOs of the paper. Structural sharing violations indicate a
    mis-constructed design, not a transient stall, so they raise.
    """


class BitwidthOverflow(HlsError):
    """A signal value exceeded the range proven by bitwidth analysis."""


class KernelError(HlsError):
    """A kernel's generator raised; wraps the original exception."""

    def __init__(self, kernel_name: str, original: BaseException):
        super().__init__(f"kernel {kernel_name!r} failed: {original!r}")
        self.kernel_name = kernel_name
        self.original = original
