"""Reusable producer/consumer kernels: the streaming idiom library.

The paper's coding style (Section II-A) builds hardware out of small
threads that read FIFOs, compute, and write FIFOs. Beyond the 1-in/1-out
``streaming_map``, real designs need plumbing: broadcasts, splitters,
mergers, delay lines. These kernels provide that plumbing with the same
II=1 cycle discipline, and are the building blocks used by tests and by
anyone extending the accelerator (e.g. adding a new unit type).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.hls.fifo import PthreadFifo
from repro.hls.kernel import KernelBody, Tick


def fork(in_queue: PthreadFifo, out_queues: list[PthreadFifo]) -> KernelBody:
    """Broadcast every input value to all output queues (one cycle each).

    All output writes happen in the same cycle (distinct ports), so the
    fork sustains II = 1 when none of the consumers back-pressures.
    """
    if not out_queues:
        raise ValueError("fork needs at least one output queue")
    while True:
        value = yield in_queue.read()
        for out_queue in out_queues:
            yield out_queue.write(value)
        yield Tick(1)


def round_robin_split(in_queue: PthreadFifo,
                      out_queues: list[PthreadFifo]) -> KernelBody:
    """Distribute inputs cyclically: item i goes to queue ``i % n``."""
    if not out_queues:
        raise ValueError("split needs at least one output queue")
    index = 0
    while True:
        value = yield in_queue.read()
        yield out_queues[index].write(value)
        index = (index + 1) % len(out_queues)
        yield Tick(1)


def round_robin_merge(in_queues: list[PthreadFifo],
                      out_queue: PthreadFifo) -> KernelBody:
    """Interleave inputs cyclically: output i comes from queue ``i % n``.

    Deterministic merge order (unlike an arbiter), matching how the
    accumulators consume their four convolution-unit streams.
    """
    if not in_queues:
        raise ValueError("merge needs at least one input queue")
    index = 0
    while True:
        value = yield in_queues[index].read()
        yield out_queue.write(value)
        index = (index + 1) % len(in_queues)
        yield Tick(1)


def streaming_filter(in_queue: PthreadFifo, out_queue: PthreadFifo,
                     predicate: Callable[[Any], bool]) -> KernelBody:
    """Forward only values satisfying ``predicate`` (II = 1 regardless)."""
    while True:
        value = yield in_queue.read()
        if predicate(value):
            yield out_queue.write(value)
        yield Tick(1)


def streaming_reduce(in_queue: PthreadFifo, out_queue: PthreadFifo,
                     fn: Callable[[Any, Any], Any], window: int,
                     initial: Any = 0) -> KernelBody:
    """Fold every ``window`` consecutive inputs into one output."""
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    while True:
        accumulator = initial
        for _ in range(window):
            value = yield in_queue.read()
            accumulator = fn(accumulator, value)
            yield Tick(1)
        yield out_queue.write(accumulator)


def delay_line(in_queue: PthreadFifo, out_queue: PthreadFifo,
               depth: int, fill: Any = 0) -> KernelBody:
    """Fixed-latency pipeline: output lags input by ``depth`` items.

    The first ``depth`` outputs are ``fill`` (register reset values),
    like a shift register synthesized from a pipelined loop.
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    registers = [fill] * depth
    while True:
        value = yield in_queue.read()
        yield out_queue.write(registers[0])
        registers = registers[1:] + [value]
        yield Tick(1)


def generator_source(out_queue: PthreadFifo,
                     values: Iterable[Any],
                     interval: int = 1) -> KernelBody:
    """Stream ``values`` at one item per ``interval`` cycles."""
    if interval < 1:
        raise ValueError(f"interval must be >= 1, got {interval}")
    for value in values:
        yield out_queue.write(value)
        yield Tick(interval)
