"""Waveform capture: per-cycle visibility into a streaming design.

Hardware debugging lives on waveforms; this module provides the cycle
simulator's equivalent. A :class:`WaveformRecorder` samples kernel
states and FIFO occupancies for a bounded window and renders an ASCII
timeline — the tool used to see where a pipeline stalls and why.

The recorder is itself a finite kernel (it samples for ``window``
cycles then stops), so it does not mask deadlock detection once its
window expires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hls.kernel import KernelState, Tick
from repro.hls.sim import Simulator

#: One-character glyph per kernel state for the ASCII timeline.
STATE_GLYPHS = {
    KernelState.READY: ".",
    KernelState.SLEEPING: "#",       # actively working (ticking)
    KernelState.STALL_EMPTY: "e",
    KernelState.STALL_FULL: "f",
    KernelState.AT_BARRIER: "b",
    KernelState.DONE: " ",
    KernelState.FAILED: "X",
}


@dataclass
class WaveformRecorder:
    """Samples a simulator every cycle for a bounded window."""

    sim: Simulator
    window: int = 256
    kernel_states: dict[str, list[KernelState]] = field(default_factory=dict)
    fifo_levels: dict[str, list[int]] = field(default_factory=dict)
    cycles: list[int] = field(default_factory=list)

    def __post_init__(self):
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        for kernel in self.sim.kernels:
            self.kernel_states[kernel.name] = []
        for fifo in self.sim.fifos:
            self.fifo_levels[fifo.name] = []
        self.sim.add_kernel("waveform-recorder", self._body())

    def _body(self):
        for _ in range(self.window):
            self._sample()
            yield Tick(1)

    def _sample(self) -> None:
        self.cycles.append(self.sim.now)
        for kernel in self.sim.kernels:
            if kernel.name == "waveform-recorder":
                continue
            if kernel.name in self.kernel_states:
                self.kernel_states[kernel.name].append(kernel.state)
        for fifo in self.sim.fifos:
            self.fifo_levels[fifo.name].append(fifo.occupancy)

    @property
    def samples(self) -> int:
        return len(self.cycles)

    def stall_fraction(self, kernel_name: str) -> float:
        """Fraction of sampled cycles the kernel spent stalled."""
        states = self.kernel_states[kernel_name]
        if not states:
            return 0.0
        stalled = sum(1 for s in states
                      if s in (KernelState.STALL_EMPTY,
                               KernelState.STALL_FULL,
                               KernelState.AT_BARRIER))
        return stalled / len(states)

    def peak_level(self, fifo_name: str) -> int:
        levels = self.fifo_levels[fifo_name]
        return max(levels) if levels else 0

    def render(self, kernels: list[str] | None = None,
               first: int = 0, width: int = 64) -> str:
        """ASCII timeline: one row per kernel, one glyph per cycle.

        Glyphs: ``#`` working, ``e`` stalled on empty queue, ``f`` on
        full queue, ``b`` at barrier, space done.
        """
        names = kernels if kernels is not None else \
            sorted(self.kernel_states)
        span = slice(first, first + width)
        header_cycles = self.cycles[span]
        if not header_cycles:
            return "(no samples in range)"
        lines = [f"cycles {header_cycles[0]}..{header_cycles[-1]} "
                 f"(# work, e empty-stall, f full-stall, b barrier)"]
        for name in names:
            states = self.kernel_states.get(name)
            if states is None:
                raise KeyError(f"no kernel {name!r} recorded")
            glyphs = "".join(STATE_GLYPHS[s] for s in states[span])
            lines.append(f"{name:<24} {glyphs}")
        return "\n".join(lines)
