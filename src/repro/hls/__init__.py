"""LegUp-like HLS substrate: streaming kernels, FIFOs, cycle simulation.

This package is the behavioural stand-in for the LegUp Pthreads-to-
hardware flow the paper builds on (Section II-A): software threads
written in the producer/consumer idiom become streaming kernels
connected by FIFO queues, simulated in lock-step at cycle granularity.
"""

from repro.hls.barrier import Barrier, BarrierWaitOp
from repro.hls.bitwidth import (BitwidthAnalyzer, bits_for_range,
                                bits_for_signed, bits_for_unsigned,
                                mask_known_zero_bits)
from repro.hls.constraints import (HlsConstraints, achieved_fmax_mhz,
                                   congestion_fmax_mhz,
                                   pipeline_depth_for, routing_succeeds,
                                   UNOPT_CLOCK_MHZ)
from repro.hls.errors import (BitwidthOverflow, CombinationalLoop,
                              FifoPortConflict, FifoWidthError, HlsError,
                              KernelError, SimulationDeadlock,
                              SimulationTimeout)
from repro.hls.fifo import PthreadFifo, ReadOp, WriteOp
from repro.hls.kernel import (Kernel, KernelState, KernelStats, Tick,
                              streaming_map, streaming_sink,
                              streaming_source)
from repro.hls.report import FifoReport, HlsReport, KernelReport
from repro.hls.streams import (delay_line, fork, generator_source,
                               round_robin_merge, round_robin_split,
                               streaming_filter, streaming_reduce)
from repro.hls.waveform import STATE_GLYPHS, WaveformRecorder
from repro.hls.sim import SimSnapshot, Simulator, TraceEvent, Watchdog

__all__ = [
    "Barrier", "BarrierWaitOp",
    "BitwidthAnalyzer", "bits_for_range", "bits_for_signed",
    "bits_for_unsigned", "mask_known_zero_bits",
    "HlsConstraints", "achieved_fmax_mhz", "congestion_fmax_mhz",
    "pipeline_depth_for", "routing_succeeds", "UNOPT_CLOCK_MHZ",
    "BitwidthOverflow", "CombinationalLoop", "FifoPortConflict",
    "FifoWidthError", "HlsError", "KernelError", "SimulationDeadlock",
    "SimulationTimeout",
    "PthreadFifo", "ReadOp", "WriteOp",
    "Kernel", "KernelState", "KernelStats", "Tick",
    "streaming_map", "streaming_sink", "streaming_source",
    "FifoReport", "HlsReport", "KernelReport",
    "delay_line", "fork", "generator_source", "round_robin_merge",
    "round_robin_split", "streaming_filter", "streaming_reduce",
    "STATE_GLYPHS", "WaveformRecorder",
    "SimSnapshot", "Simulator", "TraceEvent", "Watchdog",
]
