"""HLS synthesis report: what LegUp would print about a design.

Aggregates per-kernel metadata (II, FSM states, pipeline depth),
per-FIFO geometry and simulator statistics into one report object.
The area model (:mod:`repro.area`) consumes these reports; the tests
use them to check the paper's structural claims (e.g. the monolithic
controller synthesizing to hundreds of FSM states, fixed by splitting
it into two functions — Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hls.sim import Simulator


@dataclass(frozen=True)
class KernelReport:
    """Synthesis-level summary of one streaming kernel."""

    name: str
    ii: int
    fsm_states: int
    active_cycles: int
    stall_empty_cycles: int
    stall_full_cycles: int
    barrier_cycles: int
    items_read: int
    items_written: int
    sleep_cycles: int = 0

    @property
    def utilization(self) -> float:
        """Fraction of the kernel's observed cycles spent doing work."""
        total = (self.active_cycles + self.stall_empty_cycles +
                 self.stall_full_cycles + self.barrier_cycles)
        if total == 0:
            return 0.0
        return self.active_cycles / total

    @property
    def measured_ii(self) -> float:
        """Achieved initiation interval: busy cycles per item consumed.

        Busy = active + multi-cycle-tick sleep (a ``Tick(n)`` is one
        active cycle plus ``n - 1`` sleeping ones). The scheduled
        ``ii`` is the design target (1 for the paper's pipelined
        kernels); this is what the run actually sustained — the number
        HLS users check first when throughput disappoints.
        """
        if self.items_read == 0:
            return 0.0
        return (self.active_cycles + self.sleep_cycles) / self.items_read


@dataclass(frozen=True)
class FifoReport:
    """Synthesis-level summary of one FIFO queue."""

    name: str
    depth: int
    width: int | None
    pushes: int
    pops: int
    max_occupancy: int

    @property
    def storage_bits(self) -> int:
        """LUT-RAM bits implied by the queue geometry (width defaults to 32)."""
        return self.depth * (self.width if self.width is not None else 32)


@dataclass
class HlsReport:
    """Complete report for one synthesized design (one simulator)."""

    design: str
    cycles: int
    kernels: list[KernelReport] = field(default_factory=list)
    fifos: list[FifoReport] = field(default_factory=list)

    @classmethod
    def from_simulator(cls, sim: Simulator) -> "HlsReport":
        """Snapshot ``sim`` into a report (typically after a run)."""
        kernels = [
            KernelReport(
                name=k.name,
                ii=k.ii,
                fsm_states=k.fsm_states,
                active_cycles=k.stats.active_cycles,
                stall_empty_cycles=k.stats.stall_empty_cycles,
                stall_full_cycles=k.stats.stall_full_cycles,
                barrier_cycles=k.stats.barrier_cycles,
                items_read=k.stats.items_read,
                items_written=k.stats.items_written,
                sleep_cycles=k.stats.sleep_cycles,
            )
            for k in sim.kernels
        ]
        fifos = [
            FifoReport(
                name=f.name,
                depth=f.depth,
                width=f.width,
                pushes=f.stats.pushes,
                pops=f.stats.pops,
                max_occupancy=f.stats.max_occupancy,
            )
            for f in sim.fifos
        ]
        return cls(design=sim.name, cycles=sim.now, kernels=kernels,
                   fifos=fifos)

    @property
    def total_fsm_states(self) -> int:
        return sum(k.fsm_states for k in self.kernels)

    @property
    def total_fifo_bits(self) -> int:
        return sum(f.storage_bits for f in self.fifos)

    def kernel(self, name: str) -> KernelReport:
        for entry in self.kernels:
            if entry.name == name:
                return entry
        raise KeyError(f"no kernel {name!r} in report for {self.design!r}")

    def format_table(self) -> str:
        """Human-readable synthesis report (fixed-width text table)."""
        lines = [
            f"HLS report: {self.design} ({self.cycles} cycles, "
            f"{len(self.kernels)} kernels, {len(self.fifos)} fifos)",
            f"{'kernel':<28}{'II':>4}{'FSM':>6}{'active':>10}"
            f"{'stallE':>8}{'stallF':>8}{'barrier':>8}{'util%':>7}",
        ]
        for k in self.kernels:
            lines.append(
                f"{k.name:<28}{k.ii:>4}{k.fsm_states:>6}"
                f"{k.active_cycles:>10}{k.stall_empty_cycles:>8}"
                f"{k.stall_full_cycles:>8}{k.barrier_cycles:>8}"
                f"{100.0 * k.utilization:>6.1f}%")
        return "\n".join(lines)
