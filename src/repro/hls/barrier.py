"""Pthreads-style cycle barrier.

The paper synchronizes the completion of the four concurrently-computed
OFM tiles at a given x/y position with a Pthreads barrier
(Section III-B1). This module provides the cycle-level equivalent: a
kernel yields :meth:`Barrier.wait`; when the last party arrives at cycle
``t``, every waiter resumes at cycle ``t + 1``.

The barrier is cyclic (generational), like ``pthread_barrier_wait``: a
fast kernel may loop around and arrive for generation ``g + 1`` while
slow kernels are still departing generation ``g``; each waiter is
stamped with the generation it joined, so rounds never mix.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BarrierWaitOp:
    """Scheduler operation: block until all parties reach ``barrier``."""

    barrier: "Barrier"


class Barrier:
    """A reusable (generational) barrier for ``parties`` kernels."""

    def __init__(self, name: str, parties: int):
        if parties < 1:
            raise ValueError(f"barrier {name!r}: parties must be >= 1")
        self.name = name
        self.parties = parties
        self.generation = 0
        self.trips = 0
        self._waiting: dict[str, int] = {}       # kernel -> generation joined
        self._release_cycle: dict[int, int] = {}  # generation -> release cycle

    def wait(self) -> BarrierWaitOp:
        """Return the wait operation for a kernel to ``yield``."""
        return BarrierWaitOp(self)

    # -- scheduler-facing interface ----------------------------------------

    def arrive(self, kernel_name: str, now: int) -> None:
        """Record that ``kernel_name`` reached the barrier at cycle ``now``.

        Idempotent while the kernel is still waiting (the scheduler
        retries the pending operation every cycle).
        """
        if kernel_name in self._waiting:
            return
        generation = self.generation
        self._waiting[kernel_name] = generation
        arrivals = sum(1 for g in self._waiting.values() if g == generation)
        if arrivals == self.parties:
            self._release_cycle[generation] = now + 1
            self.generation += 1
            self.trips += 1

    def released(self, kernel_name: str, now: int) -> bool:
        """True once ``kernel_name``'s generation has been released."""
        generation = self._waiting.get(kernel_name)
        if generation is None:
            return False
        release = self._release_cycle.get(generation)
        return release is not None and now >= release

    def depart(self, kernel_name: str) -> None:
        """A released waiter leaves; forget empty generations."""
        generation = self._waiting.pop(kernel_name, None)
        if generation is None:
            return
        if generation not in self._waiting.values():
            self._release_cycle.pop(generation, None)

    def release_cycle_for(self, kernel_name: str) -> int | None:
        """Release cycle of the generation ``kernel_name`` is waiting in.

        ``None`` if the kernel is not waiting or its generation has no
        release scheduled yet (more arrivals needed).  Used by the
        scheduler's cycle-warp fast path: it is the exact cycle at
        which this waiter unblocks without any other kernel acting.
        """
        generation = self._waiting.get(kernel_name)
        if generation is None:
            return None
        return self._release_cycle.get(generation)

    def pending_release(self, now: int) -> bool:
        """True if some generation releases strictly after ``now``.

        Used by the deadlock detector: those waiters will make progress.
        """
        return any(cycle > now for cycle in self._release_cycle.values())

    @property
    def arrived_count(self) -> int:
        """Waiters of the *current* (not yet released) generation."""
        return sum(1 for g in self._waiting.values() if g == self.generation)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Barrier({self.name!r}, parties={self.parties}, "
                f"waiting={len(self._waiting)})")
