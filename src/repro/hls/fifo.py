"""Bounded FIFO queues modelling ``LEGUP_PTHREAD_FIFO``.

The paper's kernels communicate exclusively through FIFO queues created
with user-provided lengths and bitwidths (Section II-A). This module
models those queues at cycle granularity:

* a FIFO has a bounded capacity (``depth``);
* one value may be pushed and one popped per clock cycle (one read port,
  one write port — the LUT-RAM FIFOs of Section IV-A);
* a pushed value becomes visible to the consumer ``latency`` cycles
  later (default 1, a registered FIFO);
* if a ``width`` in bits is given, pushed integers are range-checked.

Kernels never call :meth:`PthreadFifo.pop` directly; they ``yield`` the
operation objects returned by :meth:`read` / :meth:`write` to the
simulator, mirroring ``pthread_fifo_read`` / ``pthread_fifo_write`` in
the paper's C code.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.hls.errors import FifoWidthError


@dataclass(frozen=True)
class ReadOp:
    """Scheduler operation: pop one value from ``fifo`` (stall if empty)."""

    fifo: "PthreadFifo"


@dataclass(frozen=True)
class WriteOp:
    """Scheduler operation: push ``value`` into ``fifo`` (stall if full)."""

    fifo: "PthreadFifo"
    value: Any


@dataclass
class FifoStats:
    """Lifetime statistics of one FIFO, for HLS reports and debugging."""

    pushes: int = 0
    pops: int = 0
    max_occupancy: int = 0
    stall_full_cycles: int = 0
    stall_empty_cycles: int = 0


@dataclass
class _Entry:
    value: Any
    visible_cycle: int


class PthreadFifo:
    """A bounded, cycle-accurate FIFO queue between two streaming kernels.

    Parameters
    ----------
    name:
        Identifier used in traces, reports and error messages.
    depth:
        Maximum number of in-flight values (including not-yet-visible
        ones). Must be at least 1.
    width:
        Optional bit width. When set, every pushed value must be an
        ``int`` in ``[-2**(width-1), 2**width - 1]`` — i.e. it must fit
        in ``width`` bits under either a signed or unsigned reading,
        matching how HLS sizes queue data buses.
    latency:
        Cycles before a pushed value becomes readable. 1 models a
        registered FIFO (the default and the hardware-faithful value);
        0 models a combinational bypass, useful in unit tests.
    """

    def __init__(self, name: str, depth: int, width: int | None = None,
                 latency: int = 1):
        if depth < 1:
            raise ValueError(f"fifo {name!r}: depth must be >= 1, got {depth}")
        if width is not None and width < 1:
            raise ValueError(f"fifo {name!r}: width must be >= 1, got {width}")
        if latency < 0:
            raise ValueError(f"fifo {name!r}: latency must be >= 0")
        self.name = name
        self.depth = depth
        self.width = width
        self.latency = latency
        self.stats = FifoStats()
        self._entries: deque[_Entry] = deque()
        self._last_push_cycle = -1
        self._last_pop_cycle = -1

    # -- operations yielded by kernels ------------------------------------

    def read(self) -> ReadOp:
        """Return the read operation for a kernel to ``yield``."""
        return ReadOp(self)

    def write(self, value: Any) -> WriteOp:
        """Return the write operation for a kernel to ``yield``."""
        return WriteOp(self, value)

    # -- scheduler-facing interface ----------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def occupancy(self) -> int:
        """Number of in-flight values, visible or not."""
        return len(self._entries)

    def is_empty(self) -> bool:
        return not self._entries

    def is_full(self) -> bool:
        return len(self._entries) >= self.depth

    def can_pop(self, now: int) -> bool:
        """True if a value is visible at cycle ``now`` and the read port is free."""
        if self._last_pop_cycle == now:
            return False
        if not self._entries:
            return False
        return self._entries[0].visible_cycle <= now

    def can_push(self, now: int) -> bool:
        """True if there is space and the write port is free at cycle ``now``."""
        if self._last_push_cycle == now:
            return False
        return len(self._entries) < self.depth

    def pop(self, now: int) -> Any:
        """Pop the head value. Caller must have checked :meth:`can_pop`."""
        assert self.can_pop(now), f"fifo {self.name!r}: pop without can_pop"
        self._last_pop_cycle = now
        self.stats.pops += 1
        return self._entries.popleft().value

    def push(self, now: int, value: Any) -> None:
        """Push ``value``. Caller must have checked :meth:`can_push`."""
        assert self.can_push(now), f"fifo {self.name!r}: push without can_push"
        self._check_width(value)
        self._last_push_cycle = now
        self._entries.append(_Entry(value, now + self.latency))
        self.stats.pushes += 1
        if len(self._entries) > self.stats.max_occupancy:
            self.stats.max_occupancy = len(self._entries)

    def has_future_visibility(self, now: int) -> bool:
        """True if some queued entry becomes visible strictly after ``now``.

        Used by the deadlock detector: such an entry can unblock a
        stalled reader on a later cycle.
        """
        return any(entry.visible_cycle > now for entry in self._entries)

    def peek(self, now: int) -> Any:
        """Return the head value without consuming it (must be visible)."""
        assert self._entries and self._entries[0].visible_cycle <= now
        return self._entries[0].value

    # -- internals ----------------------------------------------------------

    def _check_width(self, value: Any) -> None:
        if self.width is None or not isinstance(value, int):
            return
        lo = -(1 << (self.width - 1))
        hi = (1 << self.width) - 1
        if not lo <= value <= hi:
            raise FifoWidthError(
                f"fifo {self.name!r}: value {value} does not fit in "
                f"{self.width} bits")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PthreadFifo({self.name!r}, depth={self.depth}, "
                f"occupancy={self.occupancy})")
