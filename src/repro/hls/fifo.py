"""Bounded FIFO queues modelling ``LEGUP_PTHREAD_FIFO``.

The paper's kernels communicate exclusively through FIFO queues created
with user-provided lengths and bitwidths (Section II-A). This module
models those queues at cycle granularity:

* a FIFO has a bounded capacity (``depth``);
* one value may be pushed and one popped per clock cycle (one read port,
  one write port — the LUT-RAM FIFOs of Section IV-A);
* a pushed value becomes visible to the consumer ``latency`` cycles
  later (default 1, a registered FIFO);
* the *full* flag is registered: a slot freed by a pop at cycle ``t``
  accepts a new push only from cycle ``t + 1``.  This makes a
  same-cycle push + pop on a capacity-1 FIFO deterministic — the push
  stalls one cycle no matter in which order the scheduler advances the
  producer and the consumer — at the cost that a depth-1 queue cannot
  sustain II = 1 (use depth >= 2 for back-to-back streaming, as in
  real registered FIFOs);
* if a ``width`` in bits is given, pushed integers are range-checked.

Fault injection (see :mod:`repro.faults`) attaches through the
:attr:`PthreadFifo.fault_hook` slot.  The slot defaults to ``None`` and
every call site guards with a single ``is None`` test, so the clean
path pays no overhead and no cycle-count change when no hook is
registered.

Kernels never call :meth:`PthreadFifo.pop` directly; they ``yield`` the
operation objects returned by :meth:`read` / :meth:`write` to the
simulator, mirroring ``pthread_fifo_read`` / ``pthread_fifo_write`` in
the paper's C code.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.hls.errors import FifoPortConflict, FifoWidthError


@dataclass(frozen=True)
class ReadOp:
    """Scheduler operation: pop one value from ``fifo`` (stall if empty)."""

    fifo: "PthreadFifo"


@dataclass(frozen=True)
class WriteOp:
    """Scheduler operation: push ``value`` into ``fifo`` (stall if full)."""

    fifo: "PthreadFifo"
    value: Any


@dataclass
class FifoStats:
    """Lifetime statistics of one FIFO, for HLS reports and debugging."""

    pushes: int = 0
    pops: int = 0
    max_occupancy: int = 0
    stall_full_cycles: int = 0
    stall_empty_cycles: int = 0
    dropped_tokens: int = 0          # pushes discarded by fault injection
    injected_stall_cycles: int = 0   # stalls forced by fault injection


@dataclass
class _Entry:
    value: Any
    visible_cycle: int


class PthreadFifo:
    """A bounded, cycle-accurate FIFO queue between two streaming kernels.

    Parameters
    ----------
    name:
        Identifier used in traces, reports and error messages.
    depth:
        Maximum number of in-flight values (including not-yet-visible
        ones). Must be at least 1.
    width:
        Optional bit width. When set, every pushed value must be an
        ``int`` in ``[-2**(width-1), 2**width - 1]`` — i.e. it must fit
        in ``width`` bits under either a signed or unsigned reading,
        matching how HLS sizes queue data buses.
    latency:
        Cycles before a pushed value becomes readable. 1 models a
        registered FIFO (the default and the hardware-faithful value);
        0 models a combinational bypass, useful in unit tests.
    """

    def __init__(self, name: str, depth: int, width: int | None = None,
                 latency: int = 1):
        if depth < 1:
            raise ValueError(f"fifo {name!r}: depth must be >= 1, got {depth}")
        if width is not None and width < 1:
            raise ValueError(f"fifo {name!r}: width must be >= 1, got {width}")
        if latency < 0:
            raise ValueError(f"fifo {name!r}: latency must be >= 0")
        self.name = name
        self.depth = depth
        self.width = width
        self.latency = latency
        self.stats = FifoStats()
        #: Optional fault-injection hook (duck-typed; see
        #: :mod:`repro.faults.hooks`). ``None`` on the clean path.
        self.fault_hook = None
        #: Optional telemetry hub (duck-typed; see
        #: :mod:`repro.obs.metrics`). Observation only; ``None`` on the
        #: clean path.
        self.obs = None
        #: Owning simulator (set by ``Simulator.fifo``): pushes and
        #: pops bump its mutation epoch so the fast path knows its
        #: cached warp target may be stale.  ``None`` for standalone
        #: queues in unit tests.
        self.sim = None
        self._entries: deque[_Entry] = deque()
        self._last_push_cycle = -1
        self._last_pop_cycle = -1

    # -- operations yielded by kernels ------------------------------------

    def read(self) -> ReadOp:
        """Return the read operation for a kernel to ``yield``."""
        return ReadOp(self)

    def write(self, value: Any) -> WriteOp:
        """Return the write operation for a kernel to ``yield``."""
        return WriteOp(self, value)

    # -- scheduler-facing interface ----------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def occupancy(self) -> int:
        """Number of in-flight values, visible or not."""
        return len(self._entries)

    def is_empty(self) -> bool:
        return not self._entries

    def is_full(self) -> bool:
        return len(self._entries) >= self.depth

    def can_pop(self, now: int) -> bool:
        """True if a value is visible at cycle ``now`` and the read port is free."""
        if self._last_pop_cycle == now:
            return False
        if not self._entries:
            return False
        if self._entries[0].visible_cycle > now:
            return False
        if (self.fault_hook is not None
                and self.fault_hook.stall_read(self, now)):
            self.stats.injected_stall_cycles += 1
            return False
        return True

    def can_push(self, now: int) -> bool:
        """True if there is space and the write port is free at cycle ``now``.

        The full flag is registered: a slot freed by a pop at ``now``
        only becomes pushable at ``now + 1``.
        """
        if self._last_push_cycle == now:
            return False
        occupancy = len(self._entries)
        if self._last_pop_cycle == now:
            occupancy += 1
        if occupancy >= self.depth:
            return False
        if (self.fault_hook is not None
                and self.fault_hook.stall_write(self, now)):
            self.stats.injected_stall_cycles += 1
            return False
        return True

    def pop(self, now: int) -> Any:
        """Pop the head value. Caller must have checked :meth:`can_pop`."""
        if self._last_pop_cycle == now:
            raise FifoPortConflict(
                f"fifo {self.name!r}: second pop at cycle {now}; the "
                f"single read port supports one pop per cycle")
        assert self.can_pop(now), f"fifo {self.name!r}: pop without can_pop"
        if self.sim is not None:
            self.sim._epoch += 1
        self._last_pop_cycle = now
        self.stats.pops += 1
        value = self._entries.popleft().value
        if self.obs is not None:
            self.obs.on_pop(self, now)
        return value

    def push(self, now: int, value: Any) -> None:
        """Push ``value``. Caller must have checked :meth:`can_push`."""
        if self._last_push_cycle == now:
            raise FifoPortConflict(
                f"fifo {self.name!r}: second push at cycle {now}; the "
                f"single write port supports one push per cycle")
        assert self.can_push(now), f"fifo {self.name!r}: push without can_push"
        if self.sim is not None:
            self.sim._epoch += 1
        self._check_width(value)
        self._last_push_cycle = now
        if (self.fault_hook is not None
                and self.fault_hook.drop_token(self, now, value)):
            # The write port was exercised but the token is lost (a
            # corrupted valid/enable signal): occupancy is unchanged.
            self.stats.dropped_tokens += 1
            return
        self._entries.append(_Entry(value, now + self.latency))
        self.stats.pushes += 1
        if len(self._entries) > self.stats.max_occupancy:
            self.stats.max_occupancy = len(self._entries)
        if self.obs is not None:
            self.obs.on_push(self, now)

    def next_visible_cycle(self, now: int) -> int | None:
        """Cycle at which the head entry becomes readable, or ``None``.

        ``None`` means the queue is empty — nothing in flight can
        unblock a stalled reader without a producer acting first.  Pops
        are in order, so the head entry is always the next to become
        visible; used by the scheduler's cycle-warp fast path to find
        the next cycle at which a stalled reader could resume.
        """
        if not self._entries:
            return None
        return self._entries[0].visible_cycle

    def has_future_visibility(self, now: int) -> bool:
        """True if some queued entry becomes visible strictly after ``now``.

        Used by the deadlock detector: such an entry can unblock a
        stalled reader on a later cycle.
        """
        return any(entry.visible_cycle > now for entry in self._entries)

    def peek(self, now: int) -> Any:
        """Return the head value without consuming it (must be visible)."""
        assert self._entries and self._entries[0].visible_cycle <= now
        return self._entries[0].value

    def steady_stream_head(self, now: int) -> Any:
        """Burst-eligibility probe: the head value iff this queue is in
        pure producer/consumer flow at cycle ``now``, else ``None``.

        Steady flow means: exactly one in-flight entry, already visible,
        both ports idle this cycle, a depth that can sustain II = 1, and
        no fault hook armed (injected stalls are re-decided per cycle,
        so a hooked queue must take the reference stepper).  This is the
        boundary state of a queue carrying one value per cycle between
        two II = 1 kernels; see :mod:`repro.core.burst`.
        """
        if (self.fault_hook is not None or self.depth < 2
                or len(self._entries) != 1
                or self._last_push_cycle >= now
                or self._last_pop_cycle >= now):
            return None
        entry = self._entries[0]
        if entry.visible_cycle > now:
            return None
        return entry.value

    def ports_idle(self, now: int) -> bool:
        """True when neither port has been exercised at cycle ``now``.

        Burst-eligibility probe for replayers that will drive both
        ports themselves with the clock staged (see
        :mod:`repro.core.burst`): a port already used this cycle means
        some kernel moved data before the replayer looked, so the
        pattern is not in its steady boundary state.
        """
        return self._last_push_cycle < now and self._last_pop_cycle < now

    def drain_run(self, now: int) -> int:
        """Longest prefix poppable on consecutive cycles from ``now``.

        Entry ``i`` must be visible at ``now + i`` for a consumer
        popping one value per cycle.  Returns 0 when the read port was
        already used this cycle or a fault hook is armed (injected
        stalls are re-decided per cycle).  Used by the writeback-drain
        burst replayer to size its window.
        """
        if self._last_pop_cycle >= now or self.fault_hook is not None:
            return 0
        run = 0
        for entry in self._entries:
            if entry.visible_cycle > now + run:
                break
            run += 1
        return run

    def burst_replace(self, value: Any, last_cycle: int, pushes: int,
                      peak_occupancy: int) -> Any:
        """Replace the single in-flight entry after a burst window.

        The burst engine consumed the head and produced ``value`` as the
        window's final in-flight message; ``pushes`` transfers crossed
        each port during the window and the mid-cycle occupancy peaked
        at ``peak_occupancy``.  Port cycles land on ``last_cycle`` (the
        window's final cycle) exactly as per-cycle stepping would leave
        them.  Returns the consumed head value.  Telemetry is *not*
        notified per transfer — the caller bulk-credits occupancy via
        the hub's ``on_burst`` hook.
        """
        head = self._entries.popleft().value
        self._entries.append(_Entry(value, last_cycle + self.latency))
        self._last_push_cycle = last_cycle
        self._last_pop_cycle = last_cycle
        self.stats.pushes += pushes
        self.stats.pops += pushes
        if peak_occupancy > self.stats.max_occupancy:
            self.stats.max_occupancy = peak_occupancy
        if self.sim is not None:
            self.sim._epoch += 1
        return head

    # -- internals ----------------------------------------------------------

    def _check_width(self, value: Any) -> None:
        if self.width is None or not isinstance(value, int):
            return
        lo = -(1 << (self.width - 1))
        hi = (1 << self.width) - 1
        if not lo <= value <= hi:
            raise FifoWidthError(
                f"fifo {self.name!r}: value {value} does not fit in "
                f"{self.width} bits")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PthreadFifo({self.name!r}, depth={self.depth}, "
                f"occupancy={self.occupancy})")
