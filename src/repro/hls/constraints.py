"""HLS and RTL-synthesis constraints, and the achieved-clock model.

Section IV-A of the paper lists the primary constraints applied to
LegUp: loop pipelining, if-conversion, automated bitwidth minimization,
and clock-period constraints; Section V adds the RTL-synthesis-side
performance options (retiming, physical synthesis, higher place/route
effort) used for the "-opt" variants.

The paper's achieved clocks are:

* non-optimized variants (16-unopt, 256-unopt): 55 MHz, chosen for
  functional verification, not performance;
* 256-opt: 150 MHz;
* 512-opt: 120 MHz — routing *failed at higher targets due to high
  congestion* on the nearly-full device.

We model that behaviour: the achievable Fmax is the minimum of the
requested target and a congestion-limited ceiling that falls linearly
with ALM utilization. The two calibration points (44% -> >= 150 MHz,
~88% -> 120 MHz) pin the line; the model exists to reproduce the
*trend* (bigger design, slower clock), not timing closure physics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Fmax ceiling model: ``fmax = CONGESTION_F0 - CONGESTION_SLOPE * util``.
#: Calibrated so the area model's 44% (256-opt) allows ~178 MHz (150
#: target met) and its 86% (512-opt) limits to ~120 MHz (paper: routing
#: failed above 120 MHz due to congestion).
CONGESTION_F0_MHZ = 240.0
CONGESTION_SLOPE_MHZ = 140.0

#: Clock used when no performance optimizations are requested; the
#: paper verified functional correctness of the unopt variants at 55 MHz.
UNOPT_CLOCK_MHZ = 55.0

#: Clock-period targets the design-space explorer hands to HLS/RTL
#: synthesis (``repro.dse``).  120/150 MHz are the paper's achieved
#: -opt clocks; 180/240 probe the congestion ceiling — past the
#: ``CONGESTION_F0_MHZ`` intercept a higher target cannot help, so the
#: ladder stops there.  55 MHz is excluded: unopt runs pin to it
#: regardless of target (see :func:`achieved_fmax_mhz`).
DEFAULT_CLOCK_TARGETS: tuple[float, ...] = (120.0, 150.0, 180.0, 240.0)


@dataclass(frozen=True)
class HlsConstraints:
    """Constraints handed to the HLS tool for one synthesis run.

    ``clock_period_ns`` is the target period; ``performance_optimized``
    bundles the Intel-synthesis options (retiming, physical synthesis,
    high place/route effort) the paper enables for the -opt variants.
    """

    clock_period_ns: float = 1000.0 / 55.0  # 55 MHz, the unopt default
    pipeline_loops: bool = True
    if_conversion: bool = True
    bitwidth_minimize: bool = True
    performance_optimized: bool = False

    @property
    def target_fmax_mhz(self) -> float:
        return 1000.0 / self.clock_period_ns

    def with_target_mhz(self, fmax_mhz: float) -> "HlsConstraints":
        """Return a copy retargeted at ``fmax_mhz``."""
        return HlsConstraints(
            clock_period_ns=1000.0 / fmax_mhz,
            pipeline_loops=self.pipeline_loops,
            if_conversion=self.if_conversion,
            bitwidth_minimize=self.bitwidth_minimize,
            performance_optimized=self.performance_optimized,
        )


def congestion_fmax_mhz(alm_utilization: float) -> float:
    """Routing-congestion Fmax ceiling at a given ALM utilization."""
    if not 0.0 <= alm_utilization <= 1.0:
        raise ValueError(
            f"utilization must be in [0, 1], got {alm_utilization}")
    return max(1.0, CONGESTION_F0_MHZ - CONGESTION_SLOPE_MHZ * alm_utilization)


def achieved_fmax_mhz(constraints: HlsConstraints,
                      alm_utilization: float) -> float:
    """Clock the synthesized design actually closes timing at.

    Non-performance-optimized runs are pinned at the paper's 55 MHz
    verification clock regardless of target. Optimized runs achieve the
    lesser of the requested target and the congestion ceiling.
    """
    if not constraints.performance_optimized:
        return min(UNOPT_CLOCK_MHZ, constraints.target_fmax_mhz)
    ceiling = congestion_fmax_mhz(alm_utilization)
    return min(constraints.target_fmax_mhz, ceiling)


def routing_succeeds(constraints: HlsConstraints,
                     alm_utilization: float) -> bool:
    """Whether place-and-route closes at the *requested* target.

    Reproduces "routing of the 512-opt architecture failed at higher
    performance targets due to high congestion".
    """
    if not constraints.performance_optimized:
        return True
    return constraints.target_fmax_mhz <= congestion_fmax_mhz(alm_utilization)


def pipeline_depth_for(constraints: HlsConstraints,
                       combinational_delay_ns: float) -> int:
    """Pipeline stages HLS inserts to meet the clock-period target.

    A path with ``combinational_delay_ns`` of logic is split into
    ``ceil(delay / period)`` stages. Tighter clock constraints therefore
    deepen the pipelines — the mechanism behind the paper's remark that
    "the clock-period constraint applied in HLS impacts the degree of
    pipelining in the compute units and control".
    """
    if combinational_delay_ns <= 0:
        raise ValueError("combinational delay must be positive")
    period = constraints.clock_period_ns
    stages = int(-(-combinational_delay_ns // period))  # ceil division
    return max(1, stages)
