"""Cycle-level scheduler for streaming kernels.

This is the behavioural stand-in for "LegUp synthesizes the threads to
parallel hardware": every registered kernel advances in lock-step, one
clock cycle at a time, exchanging data through
:class:`~repro.hls.fifo.PthreadFifo` queues and synchronizing on
:class:`~repro.hls.barrier.Barrier` objects.

Scheduling semantics (chosen to match pipelined streaming hardware):

* Within one cycle, each runnable kernel executes operations until it
  either ticks (``yield Tick(n)`` / ``yield None``) or blocks on a FIFO
  or barrier. FIFO transfers that the queue allows complete in the
  current cycle, so ``read -> write -> tick`` loops run at II = 1.
* A value written to a FIFO at cycle ``t`` is readable at
  ``t + latency`` (default 1).
* Each FIFO performs at most one push and one pop per cycle.
* A kernel that executes more than ``ops_per_cycle_limit`` operations
  without ticking models a combinational loop and raises.

The simulator detects true deadlock (all live kernels blocked with no
future event that can unblock them) and raises
:class:`~repro.hls.errors.SimulationDeadlock` rather than spinning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.hls.barrier import Barrier, BarrierWaitOp
from repro.hls.errors import (CombinationalLoop, KernelError,
                              SimulationDeadlock, SimulationTimeout)
from repro.hls.fifo import PthreadFifo, ReadOp, WriteOp
from repro.hls.kernel import Kernel, KernelBody, KernelState, Tick
# The scheduler's event record is the unified observability event (the
# old ``kernel`` field name remains available as a property).
from repro.obs.events import TraceEvent

#: Warp-cache sentinel for an event-less idle window: no kernel will
#: ever self-unblock, and only an external driver can create work.
_IDLE_FOREVER = float("inf")


@dataclass(frozen=True)
class SimSnapshot:
    """Diagnostic freeze-frame of a simulation, attached to errors.

    ``kernels`` holds ``(name, state, wake_cycle)`` triples and
    ``fifos`` holds ``(name, occupancy, depth)`` triples, enough to see
    at a glance which kernel hung and which queues backed up.
    """

    cycle: int
    kernels: tuple[tuple[str, str, int], ...]
    fifos: tuple[tuple[str, int, int], ...]

    def format(self) -> str:
        lines = [f"cycle {self.cycle}"]
        for name, state, wake in self.kernels:
            suffix = f" (wake {wake})" if state == "sleeping" else ""
            lines.append(f"  kernel {name:<24} {state}{suffix}")
        for name, occupancy, depth in self.fifos:
            lines.append(f"  fifo   {name:<24} {occupancy}/{depth}")
        return "\n".join(lines)


class Watchdog:
    """Cycle-budget hang detector for a :class:`Simulator`.

    The watchdog samples a progress signature — total FIFO traffic plus
    an optional caller-supplied counter (e.g. DMA transfer counts for
    SoC runs whose direct transfers sleep without touching FIFOs) —
    every ``interval`` cycles. If the signature is unchanged for more
    than ``budget`` cycles the simulator raises
    :class:`~repro.hls.errors.SimulationTimeout` with a diagnostic
    :class:`SimSnapshot` attached, converting silent hangs (a dropped
    FIFO token, a hung kernel) into the existing error taxonomy.

    The budget must exceed the longest legitimate quiet period of the
    design (e.g. the largest single DMA ``Tick``).

    A watchdog object may be reused across runs: :meth:`begin_run`
    (called by :meth:`Simulator.run`) resets the sampling state so a
    stale ``_next_check`` / ``_last_progress_cycle`` from a previous
    run can neither mask a hang nor fire spuriously.  ``extra_progress``
    must be a pure function of simulator-derived state (it is evaluated
    once per dead window by the cycle-warp fast path, where it is
    provably constant).
    """

    def __init__(self, budget: int, interval: int = 64,
                 extra_progress: Callable[[], Any] | None = None):
        if budget < 1:
            raise ValueError("watchdog budget must be >= 1 cycle")
        if interval < 1:
            raise ValueError("watchdog interval must be >= 1 cycle")
        self.budget = budget
        self.interval = interval
        self.extra_progress = extra_progress
        self._last_signature: Any = None
        self._last_progress_cycle = 0
        self._next_check = 0

    def begin_run(self, now: int) -> None:
        """Reset sampling state at the start of a run.

        Without this, state surviving from a previous run (or from
        cycles stepped before ``run()``) lets a hang go undetected for
        up to a full stale ``budget`` — or fire immediately on a
        healthy design.  Detection latency from ``now`` is clamped to
        ``budget + interval`` cycles.
        """
        self._last_signature = None
        self._last_progress_cycle = now
        self._next_check = now

    def _signature(self, sim: "Simulator") -> Any:
        return (sum(f.stats.pushes + f.stats.pops for f in sim.fifos),
                None if self.extra_progress is None
                else self.extra_progress())

    def expired(self, sim: "Simulator") -> bool:
        """Sample progress at cycle boundaries; True once hung."""
        if sim.now < self._next_check:
            return False
        self._next_check = sim.now + self.interval
        signature = self._signature(sim)
        if signature != self._last_signature:
            self._last_signature = signature
            self._last_progress_cycle = sim.now
            return False
        return sim.now - self._last_progress_cycle > self.budget

    def observe_warp(self, sim: "Simulator", start: int, end: int) -> int | None:
        """Replay the checks a cycle-stepped run would make in ``[start, end)``.

        The cycle-warp fast path calls this before jumping the clock
        from ``start`` to ``end``.  The progress signature is constant
        over a dead window (no kernel acts, so no FIFO traffic), so one
        evaluation stands in for every per-cycle sample; check cycles
        form the arithmetic sequence the stepper would have visited.
        Returns the exact cycle :meth:`expired` would first have
        returned True at, or ``None`` — and leaves the sampling state
        (``_next_check``, ``_last_progress_cycle``) precisely as the
        stepper would have.
        """
        first = self._next_check if self._next_check > start else start
        if first >= end:
            return None
        signature = self._signature(sim)
        if signature != self._last_signature:
            # Progress since the previous sample: the first check in the
            # window refreshes the signature and cannot fire.
            self._last_signature = signature
            self._last_progress_cycle = first
            steady = first + self.interval
        else:
            steady = first
        # From ``steady`` on, every check sees an unchanged signature and
        # fires once now - _last_progress_cycle exceeds the budget.
        fire = None
        if steady < end:
            threshold = self._last_progress_cycle + self.budget + 1
            if steady >= threshold:
                fire = steady
            else:
                periods = -(-(threshold - steady) // self.interval)
                candidate = steady + periods * self.interval
                if candidate < end:
                    fire = candidate
        if fire is not None:
            self._next_check = fire + self.interval
            return fire
        if steady >= end:
            last_check = first
        else:
            last_check = steady + ((end - 1 - steady)
                                   // self.interval) * self.interval
        self._next_check = last_check + self.interval
        return None

    def observe_burst(self, sim: "Simulator", start: int, end: int,
                      rate: int) -> int | None:
        """Replay the checks of a *burst* window ``[start, end)``.

        Unlike a dead (warp) window, a burst window generates FIFO
        traffic at a known constant ``rate`` (port events per cycle),
        so the signature the stepper would sample at check cycle ``c``
        is ``base + (c - start) * rate`` where ``base`` is the traffic
        total at ``start``.  With ``rate > 0`` every check after the
        first sees a strictly larger signature and refreshes progress
        — the only check that can fire is one falling exactly on
        ``start`` whose signature matches the previous sample.  Returns
        that fire cycle (always ``start``) or ``None``, leaving the
        sampling state precisely as the stepper would.
        """
        first = self._next_check if self._next_check > start else start
        if first >= end:
            return None
        base, extra = self._signature(sim)
        signature = (base + (first - start) * rate, extra)
        if signature == self._last_signature:
            self._next_check = first + self.interval
            if first - self._last_progress_cycle > self.budget:
                return first
            first += self.interval
            if first >= end:
                return None
        last_check = first + ((end - 1 - first)
                              // self.interval) * self.interval
        self._last_signature = (base + (last_check - start) * rate, extra)
        self._last_progress_cycle = last_check
        self._next_check = last_check + self.interval
        return None

    def observe_window(self, sim: "Simulator", start: int, end: int,
                       traffic_at: Callable[[int], int]) -> int | None:
        """Replay the checks of a replay window with arbitrary traffic.

        Generalizes :meth:`observe_burst` to windows whose FIFO traffic
        is not a constant per-cycle rate: ``traffic_at(offset)`` must
        return the exact number of port events the stepper would have
        accumulated in cycles ``[start, start + offset)`` (the stepper
        samples at the *top* of a cycle, before kernels advance, so the
        check at cycle ``c`` sees only traffic from cycles before
        ``c``).  Used by the pad/pool and writeback-drain replayers,
        whose traffic arrives in periodic sub-cycle patterns.

        Returns the exact cycle :meth:`expired` would first have fired
        at, or ``None``.  On ``None`` the sampling state is committed
        precisely as the stepper would have left it.  On a fire at
        ``start`` the pre-fire state is committed (mirroring
        :meth:`expired`) so the caller can raise without executing the
        window.  On a *mid-window* fire nothing is committed: the
        caller must decline the window and let the scalar stepper
        reproduce the timeout bit-exactly.
        """
        first = self._next_check if self._next_check > start else start
        if first >= end:
            return None
        base, extra = self._signature(sim)
        last_signature = self._last_signature
        last_progress = self._last_progress_cycle
        cycle = first
        while cycle < end:
            signature = (base + traffic_at(cycle - start), extra)
            if signature != last_signature:
                last_signature = signature
                last_progress = cycle
            elif cycle - last_progress > self.budget:
                if cycle == start:
                    self._next_check = cycle + self.interval
                return cycle
            cycle += self.interval
        self._last_signature = last_signature
        self._last_progress_cycle = last_progress
        self._next_check = cycle
        return None


class Simulator:
    """Lock-step cycle simulator for a set of streaming kernels.

    Parameters
    ----------
    name:
        Label used in error messages and traces.
    trace:
        When true, record :class:`TraceEvent` objects in :attr:`events`.
        Tracing is O(ops) in memory; leave off for long runs.
    ops_per_cycle_limit:
        Safety bound on operations a single kernel may execute within
        one cycle before the scheduler declares a combinational loop.
    fastpath:
        When true (the default), :meth:`run` and :meth:`advance` warp
        over *dead cycles* — stretches in which every live kernel is
        sleeping out a ``Tick`` or provably blocked — jumping ``now``
        straight to the next event instead of stepping one cycle at a
        time.  All per-cycle accounting (sleep/stall counters, FIFO
        stall stats, watchdog sampling, telemetry) is bulk-credited so
        results are bit- and cycle-identical to ``fastpath=False``,
        the reference stepper; see ``docs/PERFORMANCE.md``.  Armed
        fault hooks always force the reference path.
    burst:
        When true, *steady-state compute* phases are additionally
        executed in bulk: a registered burst pipeline
        (:meth:`register_burst_pipeline`, see
        :class:`repro.core.burst.BurstPipeline`) that detects its
        kernels parked in a pure streaming posture replays whole
        phase windows (MAC stream, pad/pool chain, writeback drains,
        DMA service loops) as batched numpy ops with all per-cycle
        accounting bulk-credited — again bit- and cycle-identical to
        the reference stepper, including trace events and obs hub
        updates.  Defaults to ``fastpath``, so ``fastpath=False``
        alone still selects the pure reference stepper.  Armed fault
        hooks force the reference path; an obs hub lacking a
        replayer's bulk hooks disables only that replayer.
    """

    def __init__(self, name: str = "sim", trace: bool = False,
                 ops_per_cycle_limit: int = 100_000, fastpath: bool = True,
                 burst: bool | None = None):
        self.name = name
        self.now = 0
        self.trace = trace
        self.fastpath = fastpath
        self.burst = fastpath if burst is None else burst
        self.events: list[TraceEvent] = []
        self.kernels: list[Kernel] = []
        self.fifos: list[PthreadFifo] = []
        self.barriers: list[Barrier] = []
        self._ops_per_cycle_limit = ops_per_cycle_limit
        #: True when an external agent (e.g. the ARM host model) drives
        #: the simulation between steps and can unblock kernels by
        #: pushing FIFOs or submitting work from outside any kernel.
        #: Suppresses the deadlock detector — an all-blocked fabric is
        #: then just idle, not dead — and lets the fast path warp
        #: event-less idle windows; hangs are detected by the watchdog,
        #: host poll timeouts, or ``max_cycles`` instead.
        self.external_progress = False
        #: Optional hang-injection hook (duck-typed; see
        #: :mod:`repro.faults.hooks`). ``None`` on the clean path.
        self.fault_hook = None
        #: Optional :class:`Watchdog`; checked once per cycle when set.
        self.watchdog: Watchdog | None = None
        #: Optional host wall-clock profiler slot (duck-typed; see
        #: :class:`repro.obs.hostprof.HostProfiler`).  ``None`` on the
        #: clean path — :meth:`run`/:meth:`advance` select a separate
        #: profiled loop when set, so un-profiled runs execute the
        #: original loop with zero added work per cycle.
        self.hostprof = None
        #: Telemetry hub slot behind the :attr:`obs` property.
        self._obs = None
        #: Fast-path accounting: number of warps taken and total dead
        #: cycles skipped (both stay 0 with ``fastpath=False``).
        self.warps = 0
        self.warped_cycles = 0
        #: Burst-mode accounting: number of burst windows executed and
        #: total cycles they covered (both stay 0 with ``burst=False``
        #: or no registered pipelines).
        self.bursts = 0
        self.burst_cycles = 0
        #: Burst pipelines registered via :meth:`register_burst_pipeline`,
        #: consulted in order by :meth:`_try_burst` on live cycles.
        self._burst_pipelines: list = []
        #: Mutation epoch: bumped by every step, kernel registration,
        #: and FIFO push/pop, so the fast path can cache its scanned
        #: warp target across ``advance`` windows (a polling host would
        #: otherwise rescan every live kernel each poll interval).
        self._epoch = 0
        #: ``(epoch, event)`` — the earliest self-unblock cycle found
        #: by the last full scan, valid while the epoch is unchanged.
        #: ``event`` is ``inf`` for an event-less idle window (only
        #: reachable with :attr:`external_progress`).
        self._warp_cache: tuple[int, float] | None = None

    # -- construction --------------------------------------------------------

    @property
    def obs(self):
        """Optional telemetry hub (duck-typed; see :mod:`repro.obs.metrics`).

        ``None`` on the clean path; hooks are observation-only, so
        cycle counts are identical either way.  Assignment propagates
        the hub to every registered FIFO (and announces each via the
        hub's ``on_fifo_registered``, if provided), so attachment is
        ordering-insensitive: a hub attached after FIFOs exist sees
        them all, and FIFOs created later inherit it in
        :meth:`fifo`.
        """
        return self._obs

    @obs.setter
    def obs(self, hub) -> None:
        self._obs = hub
        for queue in self.fifos:
            queue.obs = hub
            self._announce_fifo(queue)

    def _announce_fifo(self, queue: PthreadFifo) -> None:
        if self._obs is not None:
            announce = getattr(self._obs, "on_fifo_registered", None)
            if announce is not None:
                announce(queue, self.now)

    def fifo(self, name: str, depth: int, width: int | None = None,
             latency: int = 1) -> PthreadFifo:
        """Create and register a FIFO queue."""
        queue = PthreadFifo(name, depth, width=width, latency=latency)
        queue.obs = self._obs   # inherit telemetry attached before creation
        queue.sim = self        # pushes/pops invalidate the warp cache
        self.fifos.append(queue)
        self._announce_fifo(queue)
        return queue

    def barrier(self, name: str, parties: int) -> Barrier:
        """Create and register a barrier."""
        barrier = Barrier(name, parties)
        self.barriers.append(barrier)
        return barrier

    def register_burst_pipeline(self, pipeline) -> None:
        """Register a burst-eligibility detector/executor (duck-typed).

        ``pipeline.try_burst(sim, limit)`` is called on live cycles
        (after the cycle-warp fast path declined) and must either
        return ``False`` without side effects, or execute a whole
        steady-state window — advancing ``sim.now`` and bulk-crediting
        every per-cycle effect bit- and cycle-identically to the
        reference stepper — and return ``True``.  See
        :class:`repro.core.burst.BurstPipeline`.
        """
        self._burst_pipelines.append(pipeline)

    def add_kernel(self, name: str, body: KernelBody, *,
                   fsm_states: int = 1, ii: int = 1) -> Kernel:
        """Register a kernel whose body is an already-created generator."""
        kernel = Kernel(name, body, fsm_states=fsm_states, ii=ii)
        self.kernels.append(kernel)
        self._epoch += 1
        return kernel

    # -- execution ------------------------------------------------------------

    def run(self, max_cycles: int = 10_000_000,
            until: Callable[[], bool] | None = None) -> int:
        """Advance the clock until completion and return cycles elapsed.

        The run ends when every kernel has finished, when ``until()``
        becomes true (checked at each cycle boundary), or — with an
        exception — on deadlock or when ``max_cycles`` is exceeded.

        With :attr:`fastpath` set, dead stretches are warped over;
        ``until`` predicates are unaffected because they can only
        depend on state kernels mutate, which is frozen while every
        live kernel sleeps or stalls.
        """
        start = self.now
        limit = start + max_cycles
        if self.watchdog is not None:
            self.watchdog.begin_run(self.now)
        if self.hostprof is not None:
            return self._run_profiled(start, limit, max_cycles, until)
        while True:
            if all(k.finished for k in self.kernels):
                return self.now - start
            if until is not None and until():
                return self.now - start
            if self.now >= limit:
                raise self._with_snapshot(SimulationTimeout(
                    f"{self.name}: exceeded {max_cycles} cycles"))
            if self.fastpath and self._try_warp(limit):
                continue
            if self.burst and self._try_burst(limit):
                continue
            self._step()

    def _run_profiled(self, start: int, limit: int, max_cycles: int,
                      until: Callable[[], bool] | None) -> int:
        """The :meth:`run` loop with per-mode wall-clock timing.

        Identical control flow to the plain loop — same warp/burst
        precedence, same termination checks — with each segment timed
        and reported to the :attr:`hostprof` slot.  Observation only:
        cycle-for-cycle identical results.
        """
        from time import perf_counter
        hp = self.hostprof
        while True:
            if all(k.finished for k in self.kernels):
                return self.now - start
            if until is not None and until():
                return self.now - start
            if self.now >= limit:
                raise self._with_snapshot(SimulationTimeout(
                    f"{self.name}: exceeded {max_cycles} cycles"))
            before = self.now
            t0 = perf_counter()
            if self.fastpath and self._try_warp(limit):
                hp.on_warp(self.now - before, perf_counter() - t0)
                continue
            if self.burst and self._try_burst(limit):
                hp.on_burst(self.now - before, perf_counter() - t0)
                continue
            self._step()
            hp.on_scalar(self, perf_counter() - t0)

    def advance(self, cycles: int) -> None:
        """Advance the clock by exactly ``cycles`` cycles.

        The bulk equivalent of calling :meth:`step` in a loop — used by
        host models that interleave bus accesses with fixed waits — but
        dead stretches are warped over when :attr:`fastpath` is set, so
        e.g. waiting out a long DMA burst costs O(1) instead of
        O(cycles).  Results are identical to the stepped loop.
        """
        target = self.now + cycles
        if self.hostprof is not None:
            return self._advance_profiled(target)
        while self.now < target:
            if self.fastpath and self._try_warp(target):
                continue
            if self.burst and self._try_burst(target):
                continue
            self._step()

    def _advance_profiled(self, target: int) -> None:
        """The :meth:`advance` loop with per-mode wall-clock timing."""
        from time import perf_counter
        hp = self.hostprof
        while self.now < target:
            before = self.now
            t0 = perf_counter()
            if self.fastpath and self._try_warp(target):
                hp.on_warp(self.now - before, perf_counter() - t0)
                continue
            if self.burst and self._try_burst(target):
                hp.on_burst(self.now - before, perf_counter() - t0)
                continue
            self._step()
            hp.on_scalar(self, perf_counter() - t0)

    def step(self) -> None:
        """Advance exactly one clock cycle (primarily for tests)."""
        self._step()

    # -- internals -------------------------------------------------------------

    def _try_warp(self, limit: int) -> bool:
        """Jump over dead cycles up to ``limit``; True if the clock moved.

        A cycle is *dead* when no kernel can change architectural
        state: every live kernel is sleeping out a ``Tick``, stalled on
        a FIFO whose condition cannot change without another kernel
        acting, or parked at an unreleased barrier.  The warp moves
        ``now`` to the earliest cycle at which some kernel can act
        (clamped to ``limit``) and bulk-credits exactly the per-cycle
        accounting the reference stepper would have performed — sleep
        and stall counters, FIFO stall stats, stall attribution,
        watchdog checks, timeline samples — so results are bit- and
        cycle-identical.

        The slow path is forced whenever a simulator or FIFO fault
        hook is armed (hooks are consulted every cycle and may hold
        state), and whenever a telemetry hub is attached that lacks the
        bulk observation hooks (``on_warp`` / ``on_stall_span``).
        """
        if self.fault_hook is not None:
            return False
        now = self.now
        cache = self._warp_cache
        if cache is not None and cache[0] == self._epoch:
            # No state mutation since the last full scan: the earliest
            # self-unblock event is unchanged (events are absolute
            # cycles), so skip the rescan.  This makes repeated short
            # ``advance`` windows — a host polling through a long DMA
            # burst — O(live kernels) per warp instead of per scan.
            event = cache[1]
            if event <= now:
                return False        # the event cycle itself is live
        else:
            event = None
            for kernel in self.kernels:
                state = kernel.state
                if state is KernelState.DONE or state is KernelState.FAILED:
                    continue
                k_event = kernel.next_event_cycle(now)
                if k_event is None:
                    continue
                if k_event <= now:
                    return False    # live cycle: something can act
                if event is None or k_event < event:
                    event = k_event
            if event is None:
                if not self.external_progress:
                    # Nothing will ever self-unblock: fall through so
                    # _step can run the deadlock detector (or spin out
                    # residual FIFO visibility) exactly as the
                    # reference does.  With an external driver the
                    # fabric is merely idle until ``limit`` (nobody
                    # inside can act), so the warp proceeds to it.
                    return False
                event = _IDLE_FOREVER
            self._warp_cache = (self._epoch, event)
        target = limit if event > limit else int(event)
        window = target - now
        if window < 2:
            return False            # a plain step is cheaper
        obs = self._obs
        if obs is not None and (not hasattr(obs, "on_warp")
                                or not hasattr(obs, "on_stall_span")):
            return False
        fire = None
        if self.watchdog is not None:
            fire = self.watchdog.observe_warp(self, now, target)
            if fire is not None:
                target = fire
                window = target - now
        for kernel in self.kernels:
            state = kernel.state
            if state is KernelState.SLEEPING:
                kernel.stats.sleep_cycles += window
            elif state is KernelState.STALL_EMPTY:
                fifo = kernel.pending_op.fifo
                kernel.stats.stall_empty_cycles += window
                fifo.stats.stall_empty_cycles += window
                if obs is not None and window:
                    obs.on_stall_span(kernel, fifo.name, "empty",
                                      now, window)
            elif state is KernelState.STALL_FULL:
                fifo = kernel.pending_op.fifo
                kernel.stats.stall_full_cycles += window
                fifo.stats.stall_full_cycles += window
                if obs is not None and window:
                    obs.on_stall_span(kernel, fifo.name, "full",
                                      now, window)
            elif state is KernelState.AT_BARRIER:
                kernel.stats.barrier_cycles += window
                if obs is not None and window:
                    obs.on_stall_span(kernel, kernel.pending_op.barrier.name,
                                      "barrier", now, window)
        if obs is not None and window:
            obs.on_warp(self, now, target)
        self.now = target
        if window:
            self.warps += 1
            self.warped_cycles += window
        if fire is not None:
            raise self._with_snapshot(SimulationTimeout(
                f"{self.name}: watchdog expired at cycle {self.now} — no "
                f"progress for more than {self.watchdog.budget} cycles"))
        return True

    def _try_burst(self, limit: int) -> bool:
        """Execute one steady-state burst window; True if the clock moved.

        Cheap global gates live here; everything else — the structural
        eligibility check (every participant parked in its streaming
        posture, queues in pure producer/consumer flow, no outside
        observer of an involved queue), the per-hook capability check
        against any attached obs hub, and trace-event emission when
        tracing is on — lives in the per-phase replayers (see
        ``repro.core.burst``).  The reference path is forced whenever a
        simulator fault hook is armed; an attached hub or an armed
        trace only disables the specific replayers that cannot
        reproduce its observations, not burst mode as a whole.
        """
        if not self._burst_pipelines or self.fault_hook is not None:
            return False
        for pipeline in self._burst_pipelines:
            if pipeline.try_burst(self, limit):
                return True
        return False

    def invalidate_warp_cache(self) -> None:
        """Drop the fast path's cached warp target.

        Steps, kernel registration, and FIFO pushes/pops invalidate the
        cache automatically; call this after any *other* out-of-band
        mutation that can change when a kernel unblocks — e.g. arming a
        FIFO fault hook in the middle of a run.
        """
        self._warp_cache = None

    def _step(self) -> None:
        self._epoch += 1
        if self.watchdog is not None and self.watchdog.expired(self):
            raise self._with_snapshot(SimulationTimeout(
                f"{self.name}: watchdog expired at cycle {self.now} — no "
                f"progress for more than {self.watchdog.budget} cycles"))
        progressed = False
        any_hung = False
        for kernel in self.kernels:
            if kernel.finished:
                continue
            if (self.fault_hook is not None
                    and self.fault_hook.kernel_hung(kernel, self.now)):
                # An injected hang: the kernel holds its state and makes
                # no progress; the watchdog (or max_cycles) detects it.
                kernel.stats.sleep_cycles += 1
                any_hung = True
                continue
            if (kernel.state is KernelState.SLEEPING
                    and self.now < kernel.wake_cycle):
                kernel.stats.sleep_cycles += 1
                continue
            progressed |= self._advance_kernel(kernel)
        if not progressed and not any_hung \
                and not self._future_event_pending():
            live = [k.name for k in self.kernels if not k.finished]
            states = {k.name: k.state.value for k in self.kernels
                      if not k.finished}
            raise self._with_snapshot(SimulationDeadlock(
                f"{self.name}: deadlock at cycle {self.now}; "
                f"live kernels {live} with states {states}"))
        if self.obs is not None:
            self.obs.on_cycle(self)
        self.now += 1

    def snapshot(self) -> SimSnapshot:
        """Freeze-frame of kernel states and FIFO occupancies."""
        return SimSnapshot(
            cycle=self.now,
            kernels=tuple((k.name, k.state.value, k.wake_cycle)
                          for k in self.kernels),
            fifos=tuple((f.name, f.occupancy, f.depth)
                        for f in self.fifos))

    def _with_snapshot(self, exc):
        exc.snapshot = self.snapshot()
        return exc

    def _future_event_pending(self) -> bool:
        """True if some queued FIFO entry or barrier release can unblock."""
        if self.external_progress:
            # A host model outside the kernel set can always create
            # work; an all-blocked fabric is idle, not deadlocked.
            return True
        if self.fault_hook is not None \
                or any(f.fault_hook is not None for f in self.fifos):
            # Under fault injection a blocked system is not proof of
            # deadlock: an injected stall may lift next cycle.  Hang
            # detection is owned by the watchdog / max_cycles instead.
            return True
        if any(f.has_future_visibility(self.now) for f in self.fifos):
            return True
        if any(b.pending_release(self.now) for b in self.barriers):
            return True
        return any(k.state is KernelState.SLEEPING and not k.finished
                   for k in self.kernels)

    def _advance_kernel(self, kernel: Kernel) -> bool:
        """Run ``kernel`` within the current cycle; return True on progress."""
        ops = 0
        did_work = False
        while True:
            op = kernel.pending_op
            if op is None:
                try:
                    op = kernel.body.send(kernel.send_value)
                except StopIteration:
                    kernel.state = KernelState.DONE
                    self._record(kernel, "done")
                    return True
                except Exception as exc:
                    kernel.state = KernelState.FAILED
                    kernel.failure = exc
                    raise KernelError(kernel.name, exc) from exc
                kernel.send_value = None
            ops += 1
            if ops > self._ops_per_cycle_limit:
                raise CombinationalLoop(
                    f"kernel {kernel.name!r} executed {ops} ops at cycle "
                    f"{self.now} without ticking")
            if op is None:
                op = Tick(1)
            if isinstance(op, Tick):
                kernel.pending_op = None
                kernel.state = KernelState.SLEEPING
                kernel.wake_cycle = self.now + op.n
                kernel.stats.active_cycles += 1
                return True
            if isinstance(op, ReadOp):
                if op.fifo.can_pop(self.now):
                    kernel.send_value = op.fifo.pop(self.now)
                    kernel.pending_op = None
                    kernel.stats.items_read += 1
                    did_work = True
                    self._record(kernel, "read", op.fifo.name)
                    continue
                kernel.pending_op = op
                kernel.state = KernelState.STALL_EMPTY
                kernel.stats.stall_empty_cycles += 1
                op.fifo.stats.stall_empty_cycles += 1
                if self.obs is not None:
                    self.obs.on_stall(kernel, op.fifo.name, "empty",
                                      self.now)
                return did_work
            if isinstance(op, WriteOp):
                if op.fifo.can_push(self.now):
                    op.fifo.push(self.now, op.value)
                    kernel.pending_op = None
                    kernel.stats.items_written += 1
                    did_work = True
                    self._record(kernel, "write", op.fifo.name)
                    continue
                kernel.pending_op = op
                kernel.state = KernelState.STALL_FULL
                kernel.stats.stall_full_cycles += 1
                op.fifo.stats.stall_full_cycles += 1
                if self.obs is not None:
                    self.obs.on_stall(kernel, op.fifo.name, "full",
                                      self.now)
                return did_work
            if isinstance(op, BarrierWaitOp):
                barrier = op.barrier
                barrier.arrive(kernel.name, self.now)
                if barrier.released(kernel.name, self.now):
                    barrier.depart(kernel.name)
                    kernel.pending_op = None
                    did_work = True
                    self._record(kernel, "barrier_pass", barrier.name)
                    continue
                kernel.pending_op = op
                kernel.state = KernelState.AT_BARRIER
                kernel.stats.barrier_cycles += 1
                if self.obs is not None:
                    self.obs.on_stall(kernel, barrier.name, "barrier",
                                      self.now)
                return did_work
            raise TypeError(
                f"kernel {kernel.name!r} yielded unsupported op {op!r}")

    def _record(self, kernel: Kernel, event: str, detail: str = "") -> None:
        if self.trace:
            self.events.append(TraceEvent(self.now, kernel.name, event, detail))
