"""Cycle-level scheduler for streaming kernels.

This is the behavioural stand-in for "LegUp synthesizes the threads to
parallel hardware": every registered kernel advances in lock-step, one
clock cycle at a time, exchanging data through
:class:`~repro.hls.fifo.PthreadFifo` queues and synchronizing on
:class:`~repro.hls.barrier.Barrier` objects.

Scheduling semantics (chosen to match pipelined streaming hardware):

* Within one cycle, each runnable kernel executes operations until it
  either ticks (``yield Tick(n)`` / ``yield None``) or blocks on a FIFO
  or barrier. FIFO transfers that the queue allows complete in the
  current cycle, so ``read -> write -> tick`` loops run at II = 1.
* A value written to a FIFO at cycle ``t`` is readable at
  ``t + latency`` (default 1).
* Each FIFO performs at most one push and one pop per cycle.
* A kernel that executes more than ``ops_per_cycle_limit`` operations
  without ticking models a combinational loop and raises.

The simulator detects true deadlock (all live kernels blocked with no
future event that can unblock them) and raises
:class:`~repro.hls.errors.SimulationDeadlock` rather than spinning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.hls.barrier import Barrier, BarrierWaitOp
from repro.hls.errors import (CombinationalLoop, KernelError,
                              SimulationDeadlock, SimulationTimeout)
from repro.hls.fifo import PthreadFifo, ReadOp, WriteOp
from repro.hls.kernel import Kernel, KernelBody, KernelState, Tick
# The scheduler's event record is the unified observability event (the
# old ``kernel`` field name remains available as a property).
from repro.obs.events import TraceEvent


@dataclass(frozen=True)
class SimSnapshot:
    """Diagnostic freeze-frame of a simulation, attached to errors.

    ``kernels`` holds ``(name, state, wake_cycle)`` triples and
    ``fifos`` holds ``(name, occupancy, depth)`` triples, enough to see
    at a glance which kernel hung and which queues backed up.
    """

    cycle: int
    kernels: tuple[tuple[str, str, int], ...]
    fifos: tuple[tuple[str, int, int], ...]

    def format(self) -> str:
        lines = [f"cycle {self.cycle}"]
        for name, state, wake in self.kernels:
            suffix = f" (wake {wake})" if state == "sleeping" else ""
            lines.append(f"  kernel {name:<24} {state}{suffix}")
        for name, occupancy, depth in self.fifos:
            lines.append(f"  fifo   {name:<24} {occupancy}/{depth}")
        return "\n".join(lines)


class Watchdog:
    """Cycle-budget hang detector for a :class:`Simulator`.

    The watchdog samples a progress signature — total FIFO traffic plus
    an optional caller-supplied counter (e.g. DMA transfer counts for
    SoC runs whose direct transfers sleep without touching FIFOs) —
    every ``interval`` cycles. If the signature is unchanged for more
    than ``budget`` cycles the simulator raises
    :class:`~repro.hls.errors.SimulationTimeout` with a diagnostic
    :class:`SimSnapshot` attached, converting silent hangs (a dropped
    FIFO token, a hung kernel) into the existing error taxonomy.

    The budget must exceed the longest legitimate quiet period of the
    design (e.g. the largest single DMA ``Tick``).
    """

    def __init__(self, budget: int, interval: int = 64,
                 extra_progress: Callable[[], Any] | None = None):
        if budget < 1:
            raise ValueError("watchdog budget must be >= 1 cycle")
        if interval < 1:
            raise ValueError("watchdog interval must be >= 1 cycle")
        self.budget = budget
        self.interval = interval
        self.extra_progress = extra_progress
        self._last_signature: Any = None
        self._last_progress_cycle = 0
        self._next_check = 0

    def expired(self, sim: "Simulator") -> bool:
        """Sample progress at cycle boundaries; True once hung."""
        if sim.now < self._next_check:
            return False
        self._next_check = sim.now + self.interval
        signature = (sum(f.stats.pushes + f.stats.pops
                         for f in sim.fifos),
                     None if self.extra_progress is None
                     else self.extra_progress())
        if signature != self._last_signature:
            self._last_signature = signature
            self._last_progress_cycle = sim.now
            return False
        return sim.now - self._last_progress_cycle > self.budget


class Simulator:
    """Lock-step cycle simulator for a set of streaming kernels.

    Parameters
    ----------
    name:
        Label used in error messages and traces.
    trace:
        When true, record :class:`TraceEvent` objects in :attr:`events`.
        Tracing is O(ops) in memory; leave off for long runs.
    ops_per_cycle_limit:
        Safety bound on operations a single kernel may execute within
        one cycle before the scheduler declares a combinational loop.
    """

    def __init__(self, name: str = "sim", trace: bool = False,
                 ops_per_cycle_limit: int = 100_000):
        self.name = name
        self.now = 0
        self.trace = trace
        self.events: list[TraceEvent] = []
        self.kernels: list[Kernel] = []
        self.fifos: list[PthreadFifo] = []
        self.barriers: list[Barrier] = []
        self._ops_per_cycle_limit = ops_per_cycle_limit
        #: Optional hang-injection hook (duck-typed; see
        #: :mod:`repro.faults.hooks`). ``None`` on the clean path.
        self.fault_hook = None
        #: Optional :class:`Watchdog`; checked once per cycle when set.
        self.watchdog: Watchdog | None = None
        #: Optional telemetry hub (duck-typed; see
        #: :mod:`repro.obs.metrics`). ``None`` on the clean path; hooks
        #: are observation-only, so cycle counts are identical either way.
        self.obs = None

    # -- construction --------------------------------------------------------

    def fifo(self, name: str, depth: int, width: int | None = None,
             latency: int = 1) -> PthreadFifo:
        """Create and register a FIFO queue."""
        queue = PthreadFifo(name, depth, width=width, latency=latency)
        queue.obs = self.obs    # inherit telemetry attached before creation
        self.fifos.append(queue)
        return queue

    def barrier(self, name: str, parties: int) -> Barrier:
        """Create and register a barrier."""
        barrier = Barrier(name, parties)
        self.barriers.append(barrier)
        return barrier

    def add_kernel(self, name: str, body: KernelBody, *,
                   fsm_states: int = 1, ii: int = 1) -> Kernel:
        """Register a kernel whose body is an already-created generator."""
        kernel = Kernel(name, body, fsm_states=fsm_states, ii=ii)
        self.kernels.append(kernel)
        return kernel

    # -- execution ------------------------------------------------------------

    def run(self, max_cycles: int = 10_000_000,
            until: Callable[[], bool] | None = None) -> int:
        """Advance the clock until completion and return cycles elapsed.

        The run ends when every kernel has finished, when ``until()``
        becomes true (checked at each cycle boundary), or — with an
        exception — on deadlock or when ``max_cycles`` is exceeded.
        """
        start = self.now
        while True:
            if all(k.finished for k in self.kernels):
                return self.now - start
            if until is not None and until():
                return self.now - start
            if self.now - start >= max_cycles:
                raise self._with_snapshot(SimulationTimeout(
                    f"{self.name}: exceeded {max_cycles} cycles"))
            self._step()

    def step(self) -> None:
        """Advance exactly one clock cycle (primarily for tests)."""
        self._step()

    # -- internals -------------------------------------------------------------

    def _step(self) -> None:
        if self.watchdog is not None and self.watchdog.expired(self):
            raise self._with_snapshot(SimulationTimeout(
                f"{self.name}: watchdog expired at cycle {self.now} — no "
                f"progress for more than {self.watchdog.budget} cycles"))
        progressed = False
        any_hung = False
        for kernel in self.kernels:
            if kernel.finished:
                continue
            if (self.fault_hook is not None
                    and self.fault_hook.kernel_hung(kernel, self.now)):
                # An injected hang: the kernel holds its state and makes
                # no progress; the watchdog (or max_cycles) detects it.
                kernel.stats.sleep_cycles += 1
                any_hung = True
                continue
            if (kernel.state is KernelState.SLEEPING
                    and self.now < kernel.wake_cycle):
                kernel.stats.sleep_cycles += 1
                continue
            progressed |= self._advance_kernel(kernel)
        if not progressed and not any_hung \
                and not self._future_event_pending():
            live = [k.name for k in self.kernels if not k.finished]
            states = {k.name: k.state.value for k in self.kernels
                      if not k.finished}
            raise self._with_snapshot(SimulationDeadlock(
                f"{self.name}: deadlock at cycle {self.now}; "
                f"live kernels {live} with states {states}"))
        if self.obs is not None:
            self.obs.on_cycle(self)
        self.now += 1

    def snapshot(self) -> SimSnapshot:
        """Freeze-frame of kernel states and FIFO occupancies."""
        return SimSnapshot(
            cycle=self.now,
            kernels=tuple((k.name, k.state.value, k.wake_cycle)
                          for k in self.kernels),
            fifos=tuple((f.name, f.occupancy, f.depth)
                        for f in self.fifos))

    def _with_snapshot(self, exc):
        exc.snapshot = self.snapshot()
        return exc

    def _future_event_pending(self) -> bool:
        """True if some queued FIFO entry or barrier release can unblock."""
        if self.fault_hook is not None \
                or any(f.fault_hook is not None for f in self.fifos):
            # Under fault injection a blocked system is not proof of
            # deadlock: an injected stall may lift next cycle.  Hang
            # detection is owned by the watchdog / max_cycles instead.
            return True
        if any(f.has_future_visibility(self.now) for f in self.fifos):
            return True
        if any(b.pending_release(self.now) for b in self.barriers):
            return True
        return any(k.state is KernelState.SLEEPING and not k.finished
                   for k in self.kernels)

    def _advance_kernel(self, kernel: Kernel) -> bool:
        """Run ``kernel`` within the current cycle; return True on progress."""
        ops = 0
        did_work = False
        while True:
            op = kernel.pending_op
            if op is None:
                try:
                    op = kernel.body.send(kernel.send_value)
                except StopIteration:
                    kernel.state = KernelState.DONE
                    self._record(kernel, "done")
                    return True
                except Exception as exc:
                    kernel.state = KernelState.FAILED
                    kernel.failure = exc
                    raise KernelError(kernel.name, exc) from exc
                kernel.send_value = None
            ops += 1
            if ops > self._ops_per_cycle_limit:
                raise CombinationalLoop(
                    f"kernel {kernel.name!r} executed {ops} ops at cycle "
                    f"{self.now} without ticking")
            if op is None:
                op = Tick(1)
            if isinstance(op, Tick):
                kernel.pending_op = None
                kernel.state = KernelState.SLEEPING
                kernel.wake_cycle = self.now + op.n
                kernel.stats.active_cycles += 1
                return True
            if isinstance(op, ReadOp):
                if op.fifo.can_pop(self.now):
                    kernel.send_value = op.fifo.pop(self.now)
                    kernel.pending_op = None
                    kernel.stats.items_read += 1
                    did_work = True
                    self._record(kernel, "read", op.fifo.name)
                    continue
                kernel.pending_op = op
                kernel.state = KernelState.STALL_EMPTY
                kernel.stats.stall_empty_cycles += 1
                op.fifo.stats.stall_empty_cycles += 1
                if self.obs is not None:
                    self.obs.on_stall(kernel, op.fifo.name, "empty",
                                      self.now)
                return did_work
            if isinstance(op, WriteOp):
                if op.fifo.can_push(self.now):
                    op.fifo.push(self.now, op.value)
                    kernel.pending_op = None
                    kernel.stats.items_written += 1
                    did_work = True
                    self._record(kernel, "write", op.fifo.name)
                    continue
                kernel.pending_op = op
                kernel.state = KernelState.STALL_FULL
                kernel.stats.stall_full_cycles += 1
                op.fifo.stats.stall_full_cycles += 1
                if self.obs is not None:
                    self.obs.on_stall(kernel, op.fifo.name, "full",
                                      self.now)
                return did_work
            if isinstance(op, BarrierWaitOp):
                barrier = op.barrier
                barrier.arrive(kernel.name, self.now)
                if barrier.released(kernel.name, self.now):
                    barrier.depart(kernel.name)
                    kernel.pending_op = None
                    did_work = True
                    self._record(kernel, "barrier_pass", barrier.name)
                    continue
                kernel.pending_op = op
                kernel.state = KernelState.AT_BARRIER
                kernel.stats.barrier_cycles += 1
                if self.obs is not None:
                    self.obs.on_stall(kernel, barrier.name, "barrier",
                                      self.now)
                return did_work
            raise TypeError(
                f"kernel {kernel.name!r} yielded unsupported op {op!r}")

    def _record(self, kernel: Kernel, event: str, detail: str = "") -> None:
        if self.trace:
            self.events.append(TraceEvent(self.now, kernel.name, event, detail))
