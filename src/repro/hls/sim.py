"""Cycle-level scheduler for streaming kernels.

This is the behavioural stand-in for "LegUp synthesizes the threads to
parallel hardware": every registered kernel advances in lock-step, one
clock cycle at a time, exchanging data through
:class:`~repro.hls.fifo.PthreadFifo` queues and synchronizing on
:class:`~repro.hls.barrier.Barrier` objects.

Scheduling semantics (chosen to match pipelined streaming hardware):

* Within one cycle, each runnable kernel executes operations until it
  either ticks (``yield Tick(n)`` / ``yield None``) or blocks on a FIFO
  or barrier. FIFO transfers that the queue allows complete in the
  current cycle, so ``read -> write -> tick`` loops run at II = 1.
* A value written to a FIFO at cycle ``t`` is readable at
  ``t + latency`` (default 1).
* Each FIFO performs at most one push and one pop per cycle.
* A kernel that executes more than ``ops_per_cycle_limit`` operations
  without ticking models a combinational loop and raises.

The simulator detects true deadlock (all live kernels blocked with no
future event that can unblock them) and raises
:class:`~repro.hls.errors.SimulationDeadlock` rather than spinning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.hls.barrier import Barrier, BarrierWaitOp
from repro.hls.errors import (CombinationalLoop, KernelError,
                              SimulationDeadlock, SimulationTimeout)
from repro.hls.fifo import PthreadFifo, ReadOp, WriteOp
from repro.hls.kernel import Kernel, KernelBody, KernelState, Tick


@dataclass(frozen=True)
class TraceEvent:
    """One scheduler event, recorded when tracing is enabled."""

    cycle: int
    kernel: str
    event: str
    detail: str = ""


class Simulator:
    """Lock-step cycle simulator for a set of streaming kernels.

    Parameters
    ----------
    name:
        Label used in error messages and traces.
    trace:
        When true, record :class:`TraceEvent` objects in :attr:`events`.
        Tracing is O(ops) in memory; leave off for long runs.
    ops_per_cycle_limit:
        Safety bound on operations a single kernel may execute within
        one cycle before the scheduler declares a combinational loop.
    """

    def __init__(self, name: str = "sim", trace: bool = False,
                 ops_per_cycle_limit: int = 100_000):
        self.name = name
        self.now = 0
        self.trace = trace
        self.events: list[TraceEvent] = []
        self.kernels: list[Kernel] = []
        self.fifos: list[PthreadFifo] = []
        self.barriers: list[Barrier] = []
        self._ops_per_cycle_limit = ops_per_cycle_limit

    # -- construction --------------------------------------------------------

    def fifo(self, name: str, depth: int, width: int | None = None,
             latency: int = 1) -> PthreadFifo:
        """Create and register a FIFO queue."""
        queue = PthreadFifo(name, depth, width=width, latency=latency)
        self.fifos.append(queue)
        return queue

    def barrier(self, name: str, parties: int) -> Barrier:
        """Create and register a barrier."""
        barrier = Barrier(name, parties)
        self.barriers.append(barrier)
        return barrier

    def add_kernel(self, name: str, body: KernelBody, *,
                   fsm_states: int = 1, ii: int = 1) -> Kernel:
        """Register a kernel whose body is an already-created generator."""
        kernel = Kernel(name, body, fsm_states=fsm_states, ii=ii)
        self.kernels.append(kernel)
        return kernel

    # -- execution ------------------------------------------------------------

    def run(self, max_cycles: int = 10_000_000,
            until: Callable[[], bool] | None = None) -> int:
        """Advance the clock until completion and return cycles elapsed.

        The run ends when every kernel has finished, when ``until()``
        becomes true (checked at each cycle boundary), or — with an
        exception — on deadlock or when ``max_cycles`` is exceeded.
        """
        start = self.now
        while True:
            if all(k.finished for k in self.kernels):
                return self.now - start
            if until is not None and until():
                return self.now - start
            if self.now - start >= max_cycles:
                raise SimulationTimeout(
                    f"{self.name}: exceeded {max_cycles} cycles")
            self._step()

    def step(self) -> None:
        """Advance exactly one clock cycle (primarily for tests)."""
        self._step()

    # -- internals -------------------------------------------------------------

    def _step(self) -> None:
        progressed = False
        for kernel in self.kernels:
            if kernel.finished:
                continue
            if (kernel.state is KernelState.SLEEPING
                    and self.now < kernel.wake_cycle):
                kernel.stats.sleep_cycles += 1
                continue
            progressed |= self._advance_kernel(kernel)
        if not progressed and not self._future_event_pending():
            live = [k.name for k in self.kernels if not k.finished]
            states = {k.name: k.state.value for k in self.kernels
                      if not k.finished}
            raise SimulationDeadlock(
                f"{self.name}: deadlock at cycle {self.now}; "
                f"live kernels {live} with states {states}")
        self.now += 1

    def _future_event_pending(self) -> bool:
        """True if some queued FIFO entry or barrier release can unblock."""
        if any(f.has_future_visibility(self.now) for f in self.fifos):
            return True
        if any(b.pending_release(self.now) for b in self.barriers):
            return True
        return any(k.state is KernelState.SLEEPING and not k.finished
                   for k in self.kernels)

    def _advance_kernel(self, kernel: Kernel) -> bool:
        """Run ``kernel`` within the current cycle; return True on progress."""
        ops = 0
        did_work = False
        while True:
            op = kernel.pending_op
            if op is None:
                try:
                    op = kernel.body.send(kernel.send_value)
                except StopIteration:
                    kernel.state = KernelState.DONE
                    self._record(kernel, "done")
                    return True
                except Exception as exc:
                    kernel.state = KernelState.FAILED
                    kernel.failure = exc
                    raise KernelError(kernel.name, exc) from exc
                kernel.send_value = None
            ops += 1
            if ops > self._ops_per_cycle_limit:
                raise CombinationalLoop(
                    f"kernel {kernel.name!r} executed {ops} ops at cycle "
                    f"{self.now} without ticking")
            if op is None:
                op = Tick(1)
            if isinstance(op, Tick):
                kernel.pending_op = None
                kernel.state = KernelState.SLEEPING
                kernel.wake_cycle = self.now + op.n
                kernel.stats.active_cycles += 1
                return True
            if isinstance(op, ReadOp):
                if op.fifo.can_pop(self.now):
                    kernel.send_value = op.fifo.pop(self.now)
                    kernel.pending_op = None
                    kernel.stats.items_read += 1
                    did_work = True
                    self._record(kernel, "read", op.fifo.name)
                    continue
                kernel.pending_op = op
                kernel.state = KernelState.STALL_EMPTY
                kernel.stats.stall_empty_cycles += 1
                op.fifo.stats.stall_empty_cycles += 1
                return did_work
            if isinstance(op, WriteOp):
                if op.fifo.can_push(self.now):
                    op.fifo.push(self.now, op.value)
                    kernel.pending_op = None
                    kernel.stats.items_written += 1
                    did_work = True
                    self._record(kernel, "write", op.fifo.name)
                    continue
                kernel.pending_op = op
                kernel.state = KernelState.STALL_FULL
                kernel.stats.stall_full_cycles += 1
                op.fifo.stats.stall_full_cycles += 1
                return did_work
            if isinstance(op, BarrierWaitOp):
                barrier = op.barrier
                barrier.arrive(kernel.name, self.now)
                if barrier.released(kernel.name, self.now):
                    barrier.depart(kernel.name)
                    kernel.pending_op = None
                    did_work = True
                    self._record(kernel, "barrier_pass", barrier.name)
                    continue
                kernel.pending_op = op
                kernel.state = KernelState.AT_BARRIER
                kernel.stats.barrier_cycles += 1
                return did_work
            raise TypeError(
                f"kernel {kernel.name!r} yielded unsupported op {op!r}")

    def _record(self, kernel: Kernel, event: str, detail: str = "") -> None:
        if self.trace:
            self.events.append(TraceEvent(self.now, kernel.name, event, detail))
