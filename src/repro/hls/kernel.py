"""Streaming kernels: the unit of synthesized hardware.

In the paper each software thread becomes one streaming hardware kernel
with an initiation interval (II) of 1: it can accept a new input every
clock cycle. Here a kernel is a Python *generator* that yields
operations (FIFO reads/writes, ticks, barrier waits) to the
:class:`~repro.hls.sim.Simulator`, which charges clock cycles.

The cycle-accounting contract mirrors pipelined hardware:

* FIFO reads and writes complete *within* the current cycle when the
  queue allows it, so a loop body doing ``read -> compute -> write ->
  tick(1)`` achieves II = 1;
* a read from an empty queue or a write to a full queue stalls the
  kernel until the queue allows the transfer;
* ``yield Tick(n)`` (or ``yield None`` for ``n = 1``) advances the
  kernel's clock — every loop iteration must tick at least once.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable

from repro.hls.barrier import BarrierWaitOp
from repro.hls.fifo import PthreadFifo, ReadOp, WriteOp


@dataclass(frozen=True)
class Tick:
    """Scheduler operation: advance this kernel's clock by ``n`` cycles."""

    n: int = 1

    def __post_init__(self):
        if self.n < 1:
            raise ValueError(f"Tick must advance >= 1 cycle, got {self.n}")


class KernelState(enum.Enum):
    """Lifecycle state of a kernel, visible in traces and reports."""

    READY = "ready"
    SLEEPING = "sleeping"       # waiting out a Tick
    STALL_EMPTY = "stall_empty"  # read from empty FIFO
    STALL_FULL = "stall_full"    # write to full FIFO
    AT_BARRIER = "at_barrier"
    DONE = "done"
    FAILED = "failed"


@dataclass
class KernelStats:
    """Per-kernel cycle accounting, the basis of efficiency analysis."""

    active_cycles: int = 0
    stall_empty_cycles: int = 0
    stall_full_cycles: int = 0
    barrier_cycles: int = 0
    sleep_cycles: int = 0
    items_read: int = 0
    items_written: int = 0

    @property
    def busy_fraction(self) -> float:
        """Fraction of observed cycles in which the kernel did work."""
        total = (self.active_cycles + self.stall_empty_cycles +
                 self.stall_full_cycles + self.barrier_cycles +
                 self.sleep_cycles)
        if total == 0:
            return 0.0
        return self.active_cycles / total


KernelBody = Generator[Any, Any, None]


class Kernel:
    """One streaming kernel registered with a simulator.

    Instances are created via :meth:`repro.hls.sim.Simulator.add_kernel`;
    user code only supplies the generator function (the "thread body").
    """

    def __init__(self, name: str, body: KernelBody,
                 fsm_states: int = 1, ii: int = 1):
        self.name = name
        self.body = body
        self.state = KernelState.READY
        self.stats = KernelStats()
        # Metadata for the HLS report; callers may pass better estimates.
        self.fsm_states = fsm_states
        self.ii = ii
        # Scheduler bookkeeping.
        self.pending_op: Any = None
        self.send_value: Any = None
        self.wake_cycle: int = 0
        self.failure: BaseException | None = None
        #: Optional declarative phase descriptor exposed by the kernel
        #: body (e.g. :class:`repro.core.conv_unit.ConvUnitPhase`).  The
        #: burst-mode fast path (:mod:`repro.core.burst`) introspects it
        #: to decide steady-state eligibility; ``None`` means the kernel
        #: publishes no phase information and can never participate in
        #: a burst (it is still warped over / credited generically).
        self.phase: Any = None

    @property
    def finished(self) -> bool:
        return self.state in (KernelState.DONE, KernelState.FAILED)

    def next_event_cycle(self, now: int) -> int | None:
        """Earliest cycle at which this kernel could act *without help*.

        The contract for the scheduler's cycle-warp fast path
        (:meth:`repro.hls.sim.Simulator.run`):

        * a value ``<= now`` means the kernel can act in the current
          cycle, so the cycle is live and must be stepped normally;
        * a value ``> now`` is the exact cycle the kernel unblocks by
          itself (a ``Tick`` wake-up, or a queued FIFO entry becoming
          visible);
        * ``None`` means only *another* kernel can unblock it (a full
          queue that needs a pop, an empty queue with nothing in
          flight, a barrier generation not yet released).

        A FIFO with a fault hook armed reports ``now`` — injected
        stalls are re-decided every cycle, so the warp must not skip
        any.  Port-busy flags never block here: the scheduler asks
        *before* advancing any kernel in the cycle, when
        ``_last_push_cycle``/``_last_pop_cycle`` are at most
        ``now - 1``.
        """
        if self.state is KernelState.SLEEPING:
            return self.wake_cycle
        op = self.pending_op
        if isinstance(op, ReadOp):
            if op.fifo.fault_hook is not None or op.fifo.can_pop(now):
                return now
            return op.fifo.next_visible_cycle(now)
        if isinstance(op, WriteOp):
            if op.fifo.fault_hook is not None or op.fifo.can_push(now):
                return now
            return None
        if isinstance(op, BarrierWaitOp):
            if op.barrier.released(self.name, now):
                return now
            return op.barrier.release_cycle_for(self.name)
        # READY (not yet started) or anything unrecognized: live cycle.
        return now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Kernel({self.name!r}, {self.state.value})"


def streaming_map(in_queue: PthreadFifo, out_queue: PthreadFifo,
                  fn: Callable[[Any], Any]) -> KernelBody:
    """Infinite producer/consumer kernel: ``out = fn(in)`` each cycle.

    The direct analogue of the paper's ``prodCons`` example
    (Section II-A): read one value, compute, write one value, II = 1.
    """
    while True:
        value = yield in_queue.read()
        yield out_queue.write(fn(value))
        yield Tick(1)


def streaming_source(out_queue: PthreadFifo, values: Iterable[Any]) -> KernelBody:
    """Finite kernel that streams ``values`` into ``out_queue``, one per cycle."""
    for value in values:
        yield out_queue.write(value)
        yield Tick(1)


def streaming_sink(in_queue: PthreadFifo, count: int,
                   collect: list[Any]) -> KernelBody:
    """Finite kernel that pops ``count`` values into ``collect``."""
    for _ in range(count):
        value = yield in_queue.read()
        collect.append(value)
        yield Tick(1)
