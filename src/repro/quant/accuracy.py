"""Accuracy evaluation: quantized/pruned model fidelity vs float.

The paper reports that the pruned, reduced-precision VGG-16 stays
"within 2% of the original unpruned floating point" on ImageNet
validation (Section IV-B). ImageNet is unavailable offline, so the
reproduction measures *fidelity* on the synthetic model: the float
network acts as the teacher, a batch of synthetic images as the
validation set, and the quantized/pruned model's agreement with the
teacher's predictions is the accuracy proxy. The same machinery
evaluates pruning sweeps (accuracy-vs-sparsity curves).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.graph import Network
from repro.nn.init import generate_image
from repro.nn.reference import run_network
from repro.prune.schedule import pruned_weights
from repro.quant.quantize import quantize_network, run_quantized


def top1(probs: np.ndarray) -> int:
    """Index of the most probable class."""
    return int(np.asarray(probs).reshape(-1).argmax())


def topk(probs: np.ndarray, k: int) -> list[int]:
    """Indices of the k most probable classes, most probable first."""
    flat = np.asarray(probs).reshape(-1)
    if not 1 <= k <= flat.size:
        raise ValueError(f"k={k} outside [1, {flat.size}]")
    order = np.argsort(flat)[::-1][:k]
    return [int(i) for i in order]


@dataclass(frozen=True)
class AgreementReport:
    """Fidelity of a quantized model against its float teacher."""

    images: int
    top1_matches: int
    top1_in_top5: int
    mean_abs_prob_error: float
    max_abs_prob_error: float

    @property
    def top1_agreement(self) -> float:
        return self.top1_matches / self.images

    @property
    def top5_agreement(self) -> float:
        return self.top1_in_top5 / self.images


def evaluate_agreement(network: Network, weights: dict, biases: dict,
                       model, image_shape: tuple[int, int, int],
                       images: int = 10, seed: int = 1000
                       ) -> AgreementReport:
    """Compare quantized inference against float over synthetic images.

    ``weights``/``biases`` are the float parameters the quantized
    ``model`` was built from (the teacher). Images are seeded
    ``seed .. seed+images-1``.
    """
    if images < 1:
        raise ValueError("need at least one image")
    top1_matches = 0
    in_top5 = 0
    abs_errors = []
    for index in range(images):
        image = generate_image(image_shape, seed=seed + index)
        float_probs = run_network(network, weights, image,
                                  biases).reshape(-1)
        quant_probs = run_quantized(network, model, image).reshape(-1)
        abs_errors.append(np.abs(float_probs - quant_probs))
        teacher = top1(float_probs)
        if teacher == top1(quant_probs):
            top1_matches += 1
        if teacher in topk(quant_probs, min(5, quant_probs.size)):
            in_top5 += 1
    stacked = np.concatenate(abs_errors)
    return AgreementReport(
        images=images,
        top1_matches=top1_matches,
        top1_in_top5=in_top5,
        mean_abs_prob_error=float(stacked.mean()),
        max_abs_prob_error=float(stacked.max()),
    )


@dataclass(frozen=True)
class PruningPoint:
    """One point of an accuracy-vs-sparsity curve."""

    keep_fraction: float
    report: AgreementReport


def accuracy_vs_pruning(network: Network, weights: dict, biases: dict,
                        calibration_image: np.ndarray,
                        keep_fractions: list[float],
                        image_shape: tuple[int, int, int],
                        images: int = 10, seed: int = 2000
                        ) -> list[PruningPoint]:
    """Sweep uniform pruning aggressiveness; teacher = unpruned float.

    Each point prunes every conv/FC layer to the given keep fraction,
    re-quantizes, and measures agreement with the *unpruned* float
    teacher — the analogue of the paper's accuracy-loss evaluation.
    """
    points = []
    for keep in keep_fractions:
        schedule = {name: keep for name in weights}
        pruned = pruned_weights(weights, schedule)
        model = quantize_network(network, pruned, biases,
                                 calibration_image)
        report = _agreement_vs_teacher(network, weights, biases, pruned,
                                       model, image_shape, images, seed)
        points.append(PruningPoint(keep_fraction=keep, report=report))
    return points


def _agreement_vs_teacher(network, teacher_weights, biases, pruned_weights_,
                          model, image_shape, images, seed
                          ) -> AgreementReport:
    """Agreement of the pruned+quantized model with the float teacher."""
    top1_matches = 0
    in_top5 = 0
    abs_errors = []
    for index in range(images):
        image = generate_image(image_shape, seed=seed + index)
        teacher_probs = run_network(network, teacher_weights, image,
                                    biases).reshape(-1)
        student_probs = run_quantized(network, model, image).reshape(-1)
        abs_errors.append(np.abs(teacher_probs - student_probs))
        teacher = top1(teacher_probs)
        if teacher == top1(student_probs):
            top1_matches += 1
        if teacher in topk(student_probs, min(5, student_probs.size)):
            in_top5 += 1
    stacked = np.concatenate(abs_errors)
    return AgreementReport(
        images=images, top1_matches=top1_matches, top1_in_top5=in_top5,
        mean_abs_prob_error=float(stacked.mean()),
        max_abs_prob_error=float(stacked.max()))
