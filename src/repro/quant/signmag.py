"""8-bit magnitude-plus-sign number format (Section III, IV-B).

The accelerator's computations are realized in "8-bit magnitude + sign
format": one sign bit and a 7-bit magnitude, representable values
``-127 .. +127``. Unlike two's complement there are two encodings of
zero (+0 = 0x00 and -0 = 0x80); decoding canonicalizes both to 0.

This module provides the scalar and vectorized codec plus the
rounding/saturation primitives shared by the quantizer
(:mod:`repro.quant.quantize`) and the accelerator's accumulator kernel
(:mod:`repro.core.accumulator`) — one definition, so hardware and
reference can never disagree on rounding.
"""

from __future__ import annotations

import numpy as np

#: Bits of magnitude (total storage is MAG_BITS + 1 sign bit = 8 bits).
MAG_BITS = 7

#: Largest representable magnitude.
MAX_MAG = (1 << MAG_BITS) - 1  # 127

#: Sign-bit mask within the 8-bit storage byte.
SIGN_BIT = 1 << MAG_BITS  # 0x80


def saturate(value: int) -> int:
    """Clamp ``value`` into the representable range ``[-127, 127]``."""
    if value > MAX_MAG:
        return MAX_MAG
    if value < -MAX_MAG:
        return -MAX_MAG
    return value


def saturate_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`saturate`."""
    return np.clip(values, -MAX_MAG, MAX_MAG)


def encode(value: int) -> int:
    """Encode an integer in ``[-127, 127]`` to its storage byte."""
    if not -MAX_MAG <= value <= MAX_MAG:
        raise ValueError(
            f"value {value} outside sign-magnitude range [-127, 127]")
    if value < 0:
        return SIGN_BIT | (-value)
    return value


def decode(byte: int) -> int:
    """Decode a storage byte to its integer value (-0 decodes to 0)."""
    if not 0 <= byte <= 0xFF:
        raise ValueError(f"byte {byte} outside [0, 255]")
    magnitude = byte & MAX_MAG
    if byte & SIGN_BIT:
        return -magnitude
    return magnitude


def encode_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`encode`; returns uint8 storage bytes."""
    values = np.asarray(values)
    if values.size and (values.min() < -MAX_MAG or values.max() > MAX_MAG):
        raise ValueError("values outside sign-magnitude range [-127, 127]")
    sign = (values < 0).astype(np.uint8) << MAG_BITS
    return (sign | np.abs(values).astype(np.uint8)).astype(np.uint8)


def decode_array(stored: np.ndarray) -> np.ndarray:
    """Vectorized :func:`decode`; returns int16 values."""
    stored = np.asarray(stored, dtype=np.uint8)
    magnitude = (stored & MAX_MAG).astype(np.int16)
    negative = (stored & SIGN_BIT) != 0
    return np.where(negative, -magnitude, magnitude)


def round_half_away(value: float) -> int:
    """Round to nearest with ties away from zero (hardware convention).

    Python's ``round`` rounds ties to even; sign-magnitude datapaths
    round the magnitude, giving ties-away-from-zero. Both the quantizer
    and the accelerator writeback use this single definition.
    """
    if value >= 0:
        return int(np.floor(value + 0.5))
    return -int(np.floor(-value + 0.5))


def round_half_away_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`round_half_away`."""
    values = np.asarray(values, dtype=np.float64)
    return np.where(values >= 0, np.floor(values + 0.5),
                    -np.floor(-values + 0.5)).astype(np.int64)


def shift_round(value: int, shift: int) -> int:
    """Arithmetic right shift by ``shift`` with round-half-away.

    ``shift <= 0`` is a plain left shift (exact). This is the
    requantization step between the 32-bit accumulator domain and the
    8-bit activation domain.
    """
    if shift <= 0:
        return value << (-shift)
    half = 1 << (shift - 1)
    if value >= 0:
        return (value + half) >> shift
    return -((-value + half) >> shift)


def shift_round_array(values: np.ndarray, shift: int) -> np.ndarray:
    """Vectorized :func:`shift_round` on int64 arrays."""
    values = np.asarray(values, dtype=np.int64)
    if shift <= 0:
        return values << (-shift)
    half = np.int64(1) << np.int64(shift - 1)
    magnitude = (np.abs(values) + half) >> np.int64(shift)
    return np.where(values >= 0, magnitude, -magnitude)
