"""Ternary and binary weight quantization (the paper's future work).

Section VII: "Future work involves the use of HLS to synthesize
accelerators for other neural network styles, including binarized,
ternary and recurrent networks." Ternary and binary weights slot
straight into this architecture:

* **ternary** (TWN-style): weights in {-a, 0, +a}. The threshold
  ``delta = 0.7 * mean|w|`` zeroes ~30-50% of weights *structurally* —
  free food for the zero-weight-skipping datapath, no pruning run
  required. The scale ``a`` folds into the per-layer requantization.
* **binary** (BinaryConnect-style): weights in {-a, +a} — no zeros at
  all, so zero-skipping buys nothing; the win would come from narrower
  multipliers instead. The contrast between the two on this
  architecture is the point of the ternary extension bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TernaryResult:
    """A ternarized tensor: codes in {-1, 0, +1} and the scale."""

    codes: np.ndarray      # int8 in {-1, 0, +1}
    scale: float           # the 'a' in {-a, 0, +a}

    @property
    def weights(self) -> np.ndarray:
        """The real-valued reconstruction ``codes * scale``."""
        return self.codes.astype(np.float64) * self.scale

    @property
    def sparsity(self) -> float:
        return 1.0 - np.count_nonzero(self.codes) / self.codes.size


def ternarize(weights: np.ndarray,
              threshold_factor: float = 0.7) -> TernaryResult:
    """Ternary Weight Networks quantization (Li & Liu, 2016).

    ``delta = threshold_factor * mean|w|``; weights below the threshold
    become 0, the rest become sign(w) * a with ``a`` the mean magnitude
    of the surviving weights (the L1-optimal scale).
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.size == 0:
        raise ValueError("empty weight tensor")
    if threshold_factor < 0:
        raise ValueError(f"threshold_factor must be >= 0, got "
                         f"{threshold_factor}")
    delta = threshold_factor * np.abs(weights).mean()
    mask = np.abs(weights) > delta
    if not mask.any():
        return TernaryResult(codes=np.zeros(weights.shape, dtype=np.int8),
                             scale=0.0)
    scale = float(np.abs(weights[mask]).mean())
    codes = np.where(mask, np.sign(weights), 0.0).astype(np.int8)
    return TernaryResult(codes=codes, scale=scale)


def binarize(weights: np.ndarray) -> TernaryResult:
    """BinaryConnect-style quantization: sign(w) * mean|w|, no zeros.

    Returned in the same container (codes in {-1, +1}); sparsity is 0
    by construction — which is exactly why zero-skipping cannot help.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.size == 0:
        raise ValueError("empty weight tensor")
    scale = float(np.abs(weights).mean())
    codes = np.where(weights >= 0, 1, -1).astype(np.int8)
    return TernaryResult(codes=codes, scale=scale)


def ternarize_network(weights: dict[str, np.ndarray],
                      threshold_factor: float = 0.7
                      ) -> dict[str, TernaryResult]:
    """Ternarize every layer of a weight dictionary."""
    return {name: ternarize(tensor, threshold_factor)
            for name, tensor in weights.items()}


def binarize_network(weights: dict[str, np.ndarray]
                     ) -> dict[str, TernaryResult]:
    """Binarize every layer of a weight dictionary."""
    return {name: binarize(tensor) for name, tensor in weights.items()}


def reconstruction_error(weights: np.ndarray,
                         result: TernaryResult) -> float:
    """Relative L2 error of the ternary/binary reconstruction."""
    weights = np.asarray(weights, dtype=np.float64)
    norm = float(np.linalg.norm(weights))
    if norm == 0.0:
        return 0.0
    return float(np.linalg.norm(weights - result.weights)) / norm
