"""Network quantization to 8-bit sign-magnitude, and integer inference.

Reproduces the data path of Section IV-B: weights and activations are
8-bit magnitude+sign; convolutions accumulate in wide integers
(output-stationary, "not compromise accuracy by rounding partial sums",
Section III-B); completed output tiles are rescaled by an arithmetic
shift, ReLU'd and saturated back to 8 bits.

The integer executor here is the *golden model* for the accelerator:
:mod:`repro.core` must match it bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn.graph import Network
from repro.nn.layers import (AddLayer, ConcatLayer, ConvLayer, FCLayer,
                             FlattenLayer, InputLayer, MaxPoolLayer,
                             MergeLayer, PadLayer, ReluLayer, SoftmaxLayer)
from repro.nn.reference import (conv2d, fully_connected, maxpool2d, relu,
                                softmax, zero_pad)
from repro.quant.scale import QuantParams, params_for
from repro.quant.signmag import (saturate_array, shift_round_array)


@dataclass(frozen=True)
class QuantizedTensorOp:
    """Quantized parameters of one conv or FC layer.

    ``weights_q`` holds sign-magnitude integers in [-127, 127].
    ``bias_q`` lives in the accumulator domain (exponent
    ``w_params.exponent + in_params.exponent``) so it adds directly to
    the accumulated products. ``shift`` converts accumulator-domain
    values into the output activation domain.
    """

    name: str
    weights_q: np.ndarray
    bias_q: np.ndarray
    w_params: QuantParams
    in_params: QuantParams
    out_params: QuantParams

    @property
    def shift(self) -> int:
        """Right-shift from accumulator domain to output domain."""
        return (self.w_params.exponent + self.in_params.exponent
                - self.out_params.exponent)

    @property
    def nonzero_fraction(self) -> float:
        """Fraction of non-zero quantized weights (zero-skip target)."""
        return float(np.count_nonzero(self.weights_q)) / self.weights_q.size


@dataclass(frozen=True)
class QuantizedMergeOp:
    """Integer semantics of one DAG merge (residual add or concat).

    Power-of-two scales make domain changes pure arithmetic shifts:
    input ``i`` enters the merge's output activation domain via
    ``shift_round(q_i, shifts[i])`` (``shifts[i]`` is the producer's
    exponent minus the output exponent; negative shifts are exact left
    shifts). An add then sums and saturates; a concat saturates each
    aligned input and stacks channels.
    """

    name: str
    kind: str                 # "add" | "concat"
    shifts: tuple[int, ...]   # one per input, in wiring order
    out_params: QuantParams

    def apply(self, inputs: list[np.ndarray]) -> np.ndarray:
        if len(inputs) != len(self.shifts):
            raise ValueError(
                f"{self.name}: {len(inputs)} inputs for "
                f"{len(self.shifts)} calibrated shifts")
        aligned = [shift_round_array(np.asarray(q, dtype=np.int64), s)
                   for q, s in zip(inputs, self.shifts)]
        if self.kind == "add":
            total = aligned[0]
            for other in aligned[1:]:
                total = total + other
            return saturate_array(total)
        return np.concatenate([saturate_array(a) for a in aligned], axis=0)


@dataclass
class QuantizedModel:
    """A fully quantized network: per-layer integer ops plus input domain."""

    network: Network
    input_params: QuantParams
    ops: dict[str, QuantizedTensorOp] = field(default_factory=dict)
    merges: dict[str, QuantizedMergeOp] = field(default_factory=dict)

    def conv_ops(self) -> list[QuantizedTensorOp]:
        return [self.ops[info.layer.name]
                for info in self.network.conv_infos()]

    def conv_sparsity(self) -> dict[str, float]:
        """Per-conv-layer fraction of *zero* quantized weights."""
        return {op.name: 1.0 - op.nonzero_fraction
                for op in self.conv_ops()}


def quantize_network(network: Network, weights: dict[str, np.ndarray],
                     biases: dict[str, np.ndarray],
                     calibration_image: np.ndarray) -> QuantizedModel:
    """Calibrate and quantize every conv/FC layer of ``network``.

    Activation scales come from a float calibration pass over
    ``calibration_image`` (the offline step the paper performs in
    Caffe); weight scales cover each layer's max |w|. The pass walks
    the layer DAG in topological order, tracking one (activation,
    domain) pair per layer, so branchy/residual networks calibrate the
    same way sequential stacks always have; each merge layer gets a
    :class:`QuantizedMergeOp` recording its per-input alignment shifts.
    """
    input_params = params_for(calibration_image)
    model = QuantizedModel(network, input_params)
    image = np.asarray(calibration_image, dtype=np.float64)
    acts: dict[str, np.ndarray] = {}
    domains: dict[str, QuantParams] = {}
    for layer in network.topo_layers():
        sources = network.inputs_of(layer.name)
        xs = [acts[s] for s in sources]
        ps = [domains[s] for s in sources]
        x = xs[0] if xs else image
        act_params = ps[0] if ps else input_params
        if isinstance(layer, InputLayer):
            x, act_params = image, input_params
        elif isinstance(layer, PadLayer):
            x = zero_pad(x, layer.pad)
        elif isinstance(layer, ReluLayer):
            x = relu(x)
        elif isinstance(layer, MaxPoolLayer):
            x = maxpool2d(x, layer.size, layer.stride)
        elif isinstance(layer, FlattenLayer):
            x = x.reshape(-1, 1, 1)
        elif isinstance(layer, (ConvLayer, FCLayer)):
            w = weights[layer.name]
            b = biases.get(layer.name, np.zeros(w.shape[0]))
            if isinstance(layer, ConvLayer):
                x = conv2d(x, w, b, stride=layer.stride, pad=layer.pad)
            else:
                x = fully_connected(x.reshape(-1), w, b)
            w_params = params_for(w)
            out_params = params_for(x)
            acc_exponent = w_params.exponent + act_params.exponent
            bias_q = np.round(b * (2.0 ** acc_exponent)).astype(np.int64)
            model.ops[layer.name] = QuantizedTensorOp(
                name=layer.name,
                weights_q=w_params.quantize(w),
                bias_q=bias_q,
                w_params=w_params,
                in_params=act_params,
                out_params=out_params,
            )
            act_params = out_params
        elif isinstance(layer, (AddLayer, ConcatLayer)):
            if isinstance(layer, AddLayer):
                x = xs[0].copy()
                for other in xs[1:]:
                    x = x + other
                kind = "add"
            else:
                x = np.concatenate(xs, axis=0)
                kind = "concat"
            out_params = params_for(x)
            model.merges[layer.name] = QuantizedMergeOp(
                name=layer.name, kind=kind,
                shifts=tuple(p.exponent - out_params.exponent for p in ps),
                out_params=out_params)
            act_params = out_params
        elif isinstance(layer, SoftmaxLayer):
            x = softmax(x)
        else:
            raise TypeError(f"cannot quantize layer {type(layer).__name__}")
        acts[layer.name] = x
        domains[layer.name] = act_params
    return model


def conv2d_int(ifm_q: np.ndarray, weights_q: np.ndarray,
               stride: int = 1) -> np.ndarray:
    """Exact integer convolution (int64 accumulators), valid padding."""
    out_ch, in_ch, kernel_h, kernel_w = weights_q.shape
    if ifm_q.shape[0] != in_ch:
        raise ValueError(
            f"channel mismatch: {ifm_q.shape[0]} vs {in_ch}")
    windows = sliding_window_view(ifm_q.astype(np.int64),
                                  (kernel_h, kernel_w), axis=(1, 2))
    windows = windows[:, ::stride, ::stride]
    return np.einsum("chwij,ocij->ohw", windows,
                     weights_q.astype(np.int64), optimize=True)


def quantized_conv_reference(ifm_q: np.ndarray, op: QuantizedTensorOp,
                             stride: int = 1,
                             apply_relu: bool = False) -> np.ndarray:
    """Golden single-layer conv: accumulate, bias, shift, (ReLU,) saturate."""
    acc = conv2d_int(ifm_q, op.weights_q, stride=stride)
    acc = acc + op.bias_q[:, None, None]
    out = shift_round_array(acc, op.shift)
    if apply_relu:
        out = np.maximum(out, 0)
    return saturate_array(out).astype(np.int16)


def run_quantized(network: Network, model: QuantizedModel,
                  image: np.ndarray,
                  collect: dict[str, np.ndarray] | None = None) -> np.ndarray:
    """Integer inference over the whole network.

    Returns the float softmax output; if ``collect`` is given, each
    layer's quantized output (int16) is stored under its name. DAG
    networks evaluate in topological order; merge layers apply their
    calibrated :class:`QuantizedMergeOp` alignment shifts.
    """
    image_q = model.input_params.quantize(image).astype(np.int64)
    outputs: dict[str, np.ndarray] = {}
    domains: dict[str, QuantParams] = {}
    final: np.ndarray | None = None
    for layer in network.topo_layers():
        sources = network.inputs_of(layer.name)
        xs = [outputs[s] for s in sources]
        ps = [domains[s] for s in sources]
        x = xs[0] if xs else image_q
        last_params = ps[0] if ps else model.input_params
        if isinstance(layer, InputLayer):
            x, last_params = image_q, model.input_params
        elif isinstance(layer, PadLayer):
            x = np.pad(x, ((0, 0), (layer.pad, layer.pad),
                           (layer.pad, layer.pad)))
        elif isinstance(layer, ReluLayer):
            x = np.maximum(x, 0)
        elif isinstance(layer, MaxPoolLayer):
            windows = sliding_window_view(x, (layer.size, layer.size),
                                          axis=(1, 2))
            x = windows[:, ::layer.stride, ::layer.stride].max(axis=(3, 4))
        elif isinstance(layer, FlattenLayer):
            x = x.reshape(-1, 1, 1)
        elif isinstance(layer, ConvLayer):
            op = model.ops[layer.name]
            padded = np.pad(x, ((0, 0), (layer.pad, layer.pad),
                                (layer.pad, layer.pad))) if layer.pad else x
            acc = conv2d_int(padded, op.weights_q, stride=layer.stride)
            acc = acc + op.bias_q[:, None, None]
            x = saturate_array(shift_round_array(acc, op.shift))
            last_params = op.out_params
        elif isinstance(layer, FCLayer):
            op = model.ops[layer.name]
            acc = op.weights_q.astype(np.int64) @ x.reshape(-1) + op.bias_q
            x = saturate_array(shift_round_array(acc, op.shift))
            x = x.reshape(-1, 1, 1)
            last_params = op.out_params
        elif isinstance(layer, MergeLayer):
            merge = model.merges[layer.name]
            x = merge.apply(xs)
            last_params = merge.out_params
        elif isinstance(layer, SoftmaxLayer):
            final = softmax(last_params.dequantize(x))
            outputs[layer.name] = x
            domains[layer.name] = last_params
            continue
        else:
            raise TypeError(f"no quantized executor for {type(layer).__name__}")
        outputs[layer.name] = x
        domains[layer.name] = last_params
        if collect is not None:
            collect[layer.name] = np.asarray(x, dtype=np.int64).copy()
    if final is not None:
        return final
    sink = network.layers[-1].name
    return domains[sink].dequantize(outputs[sink])
