"""Power-of-two scale selection for weights and activations.

The paper reduces precision "by scaling ... using Caffe, in a manner
similar to [Deep Compression]" (Section IV-B). We use power-of-two
scales throughout: a quantity ``x`` is represented by the integer
``q = round(x * 2**exponent)``, and rescaling between domains is a
pure arithmetic shift — exactly what the fixed-point accelerator
datapath implements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.quant.signmag import (MAX_MAG, round_half_away_array,
                                 saturate_array)


@dataclass(frozen=True)
class QuantParams:
    """A power-of-two quantization domain: value = q / 2**exponent."""

    exponent: int

    @property
    def step(self) -> float:
        """The real value of one integer step."""
        return 2.0 ** (-self.exponent)

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Real values -> saturated sign-magnitude integers (int16)."""
        scaled = np.asarray(values, dtype=np.float64) * (2.0 ** self.exponent)
        return saturate_array(round_half_away_array(scaled)).astype(np.int16)

    def dequantize(self, q: np.ndarray) -> np.ndarray:
        """Integers -> real values."""
        return np.asarray(q, dtype=np.float64) * self.step


def exponent_for_max_abs(max_abs: float) -> int:
    """Largest exponent whose quantization avoids saturating ``max_abs``.

    Picks ``e`` with ``max_abs * 2**e <= MAX_MAG``, i.e. the finest
    power-of-two step that still represents the extreme value. A zero
    tensor gets exponent 0 (any scale represents it).
    """
    if max_abs < 0:
        raise ValueError(f"max_abs must be >= 0, got {max_abs}")
    if max_abs == 0.0:
        return 0
    return int(math.floor(math.log2(MAX_MAG / max_abs)))


def params_for(values: np.ndarray) -> QuantParams:
    """Calibrate a quantization domain to cover ``values``."""
    return QuantParams(exponent_for_max_abs(float(np.abs(values).max(initial=0.0))))


def quantization_snr_db(values: np.ndarray, params: QuantParams) -> float:
    """Signal-to-quantization-noise ratio in dB (diagnostic)."""
    values = np.asarray(values, dtype=np.float64)
    reconstructed = params.dequantize(params.quantize(values))
    noise = values - reconstructed
    signal_power = float((values ** 2).mean())
    noise_power = float((noise ** 2).mean())
    if noise_power == 0.0:
        return float("inf")
    if signal_power == 0.0:
        return float("-inf")
    return 10.0 * math.log10(signal_power / noise_power)
