"""Reduced precision: 8-bit magnitude+sign quantization (Section IV-B),
accuracy evaluation, and the ternary/binary future-work extension."""

from repro.quant.accuracy import (AgreementReport, PruningPoint,
                                  accuracy_vs_pruning, evaluate_agreement,
                                  top1, topk)

from repro.quant.quantize import (QuantizedMergeOp, QuantizedModel,
                                  QuantizedTensorOp, conv2d_int,
                                  quantize_network,
                                  quantized_conv_reference, run_quantized)
from repro.quant.scale import (QuantParams, exponent_for_max_abs, params_for,
                               quantization_snr_db)
from repro.quant.ternary import (TernaryResult, binarize, binarize_network,
                                 reconstruction_error, ternarize,
                                 ternarize_network)
from repro.quant.signmag import (MAG_BITS, MAX_MAG, SIGN_BIT, decode,
                                 decode_array, encode, encode_array,
                                 round_half_away, round_half_away_array,
                                 saturate, saturate_array, shift_round,
                                 shift_round_array)

__all__ = [
    "AgreementReport", "PruningPoint", "accuracy_vs_pruning",
    "evaluate_agreement", "top1", "topk",
    "TernaryResult", "binarize", "binarize_network",
    "reconstruction_error", "ternarize", "ternarize_network",
    "QuantizedMergeOp", "QuantizedModel", "QuantizedTensorOp", "conv2d_int",
    "quantize_network",
    "quantized_conv_reference", "run_quantized",
    "QuantParams", "exponent_for_max_abs", "params_for",
    "quantization_snr_db",
    "MAG_BITS", "MAX_MAG", "SIGN_BIT", "decode", "decode_array", "encode",
    "encode_array", "round_half_away", "round_half_away_array", "saturate",
    "saturate_array", "shift_round", "shift_round_array",
]
