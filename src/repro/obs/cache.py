"""Keyed memoization with observable hit/miss counters.

Several front-end paths redo deterministic, moderately expensive work
on every call — offline weight packing (:meth:`PackedLayer.pack` walks
every kernel position in Python) and serving-profile calibration (a
full SoC layer run).  A :class:`KeyedCache` memoizes such a function
behind an explicit key and counts hits, misses and evictions, so the
saving is *measurable* rather than assumed: every cache registers
itself in a process-wide table surfaced through :func:`cache_stats`
(exported as ``repro.obs.cache_stats``).

Caches are bounded (FIFO eviction by insertion order) and keyed by
caller-supplied hashables; values are returned by reference, so cached
objects must be treated as immutable by callers — which both current
users satisfy (``PackedLayer`` is write-once after packing,
``ServiceProfile`` is a frozen dataclass).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

#: Process-wide registry of every KeyedCache, by name (creation order).
_REGISTRY: dict[str, "KeyedCache"] = {}


@dataclass
class CacheStats:
    """Counter triple for one cache; ``snapshot()`` feeds reports."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def snapshot(self) -> dict[str, int | float]:
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }


@dataclass
class KeyedCache:
    """Bounded memo table with hit/miss accounting.

    ``get_or_build(key, build)`` returns the cached value for ``key``
    or calls ``build()`` once, stores and returns its result.  Oldest
    entries are evicted first once ``maxsize`` is reached (dict
    insertion order).
    """

    name: str
    maxsize: int = 64
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: dict[Hashable, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        if self.name in _REGISTRY:
            raise ValueError(f"cache name {self.name!r} already registered")
        _REGISTRY[self.name] = self

    def get_or_build(self, key: Hashable, build: Callable[[], Any]) -> Any:
        try:
            value = self._entries[key]
        except KeyError:
            self.stats.misses += 1
            value = build()
            if len(self._entries) >= self.maxsize:
                self._entries.pop(next(iter(self._entries)))
                self.stats.evictions += 1
            self._entries[key] = value
            return value
        self.stats.hits += 1
        return value

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop all entries (counters are kept — they tell the story)."""
        self._entries.clear()


def cache_stats() -> dict[str, dict[str, int | float]]:
    """Hit/miss/eviction snapshot of every registered cache, by name."""
    return {name: cache.stats.snapshot()
            for name, cache in _REGISTRY.items()}


def reset_caches() -> None:
    """Drop every cache's entries *and* counters (test isolation)."""
    for cache in _REGISTRY.values():
        cache.clear()
        cache.stats = CacheStats()
