"""Shared Perfetto pid/track registry + trace merging.

Every Chrome ``trace_event`` exporter in the repo maps onto one unified
clock (one fabric cycle = one microsecond of trace time) but, before
this module, each exporter picked its process ids independently:
:mod:`repro.obs.timeline` used pids 1..3 for the SoC, and
:mod:`repro.obs.serving` hard-coded pid 4.  That worked only as long
as the files stayed separate.  This registry is the single source of
truth for pid assignments, so one merged ``--out`` file can carry SoC,
serving and flight-recorder tracks side by side without collisions.

:func:`merge_traces` combines several trace documents into one:
``traceEvents`` are concatenated, duplicate ``process_name`` metadata
is deduplicated, and a *conflicting* claim on a pid (two documents
naming the same pid differently) is an error rather than a silent
overwrite.
"""

from __future__ import annotations

from typing import Any

#: Unified pid assignment for every exporter in the repo.
PID_KERNELS = 1        # HLS streaming kernels (state spans)
PID_MEMORY = 2         # DMA engine + DDR4 counters
PID_SYSTEM = 3         # SoC-level instants + driver layer spans
PID_SERVING = 4        # serving simulator (batch spans, queue counters)
PID_FLIGHT = 5         # request-scoped flight recorder

#: Canonical process names, emitted as ``process_name`` metadata.
PROCESS_NAMES = {
    PID_KERNELS: "streaming kernels",
    PID_MEMORY: "memory & dma",
    PID_SYSTEM: "soc system",
    PID_SERVING: "serving",
    PID_FLIGHT: "flight recorder",
}

#: The clock statement every merged document carries.
CLOCK_NOTE = "1 fabric cycle exported as 1 us of trace time"


def process_meta(pid: int, name: str | None = None) -> dict[str, Any]:
    """The ``process_name`` metadata event for ``pid``."""
    label = name if name is not None else PROCESS_NAMES.get(pid, f"pid{pid}")
    return {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": label}}


def merge_traces(*documents: dict[str, Any]) -> dict[str, Any]:
    """Merge several Chrome trace documents onto the unified clock.

    Concatenates ``traceEvents`` in argument order, deduplicates
    identical ``process_name`` metadata, and raises :class:`ValueError`
    when two documents claim the same pid under different names — a
    collision would silently mislabel whole tracks in the Perfetto UI.
    """
    if not documents:
        raise ValueError("merge_traces needs at least one trace document")
    events: list[dict[str, Any]] = []
    claimed: dict[int, str] = {}
    for document in documents:
        for event in document.get("traceEvents", ()):
            if event.get("ph") == "M" and event.get("name") == "process_name":
                pid = event["pid"]
                name = event["args"]["name"]
                if pid in claimed:
                    if claimed[pid] != name:
                        raise ValueError(
                            f"pid {pid} claimed as {claimed[pid]!r} and "
                            f"{name!r}; use the repro.obs.trackreg "
                            f"constants to keep exporters collision-free")
                    continue            # duplicate claim: drop it
                claimed[pid] = name
            events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": CLOCK_NOTE,
            "generator": "repro.obs.trackreg.merge_traces",
        },
    }
