"""Windowed time-series metrics: counters, gauges, histograms.

The serving layer used to keep only event-driven ``(time, value)``
samples (:meth:`repro.obs.serving.ServingTimeline.sample`) — fine for
a Perfetto counter track, useless for answering "what did queue depth
do over the 30th window of 4096 cycles?".  :class:`TimeSeries` is the
windowed recorder underneath: every observation lands in the cycle
window ``floor(t / window)`` and is aggregated there, so a finished
run exposes a compact, *byte-deterministic* rolling view:

* **counters** — monotonically accumulating event counts (arrivals,
  drops by reason, batches closed, completions, faults, hedges),
  per-window increments plus the running total;
* **gauges** — instantaneous values sampled at events (queue depth,
  in-flight batches), per-window last/min/max;
* **histograms** — value distributions (request latency) over fixed
  bucket bounds, cumulative counts plus exact count/total.

Two expositions: :meth:`to_json` (sorted keys, floats rounded at the
same fixed precision as the serve report, byte-identical per seed) and
:meth:`prom_text` (Prometheus text format, for eyeballs and scrapers).
Everything is observation-only and exact: timestamps may be
:class:`~fractions.Fraction` and window indices are computed by exact
floor division, so attaching the recorder can never perturb the
simulation it watches.
"""

from __future__ import annotations

import json
import re
from fractions import Fraction
from typing import Any

#: Rounding applied to every float in the JSON document (matches
#: ``repro.serve.report.JSON_FLOAT_DECIMALS``).
JSON_FLOAT_DECIMALS = 6

#: Default histogram bucket upper bounds (cycles, log2-spaced).
DEFAULT_BOUNDS = tuple(1 << k for k in range(8, 25, 2))

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _round(value: float) -> float:
    return round(float(value), JSON_FLOAT_DECIMALS)


def _window_of(now, window: int) -> int:
    """Exact window index of timestamp ``now`` (Fraction-safe)."""
    return int(Fraction(now) // window)


def prom_name(name: str) -> str:
    """Sanitize a metric name for the Prometheus text exposition."""
    return "repro_" + _NAME_RE.sub("_", name)


class _Gauge:
    __slots__ = ("windows",)

    def __init__(self):
        # window -> [last, min, max]
        self.windows: dict[int, list[float]] = {}

    def record(self, window: int, value: float) -> None:
        entry = self.windows.get(window)
        if entry is None:
            self.windows[window] = [value, value, value]
        else:
            entry[0] = value
            if value < entry[1]:
                entry[1] = value
            if value > entry[2]:
                entry[2] = value


class _Histogram:
    __slots__ = ("bounds", "bucket_counts", "count", "total")

    def __init__(self, bounds: tuple[float, ...]):
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)   # +1 = overflow
        self.count = 0
        self.total = 0.0

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1


class TimeSeries:
    """Rolling counters/gauges/histograms on fixed cycle windows."""

    def __init__(self, window: int = 4096):
        if window < 1:
            raise ValueError("window must be >= 1 cycle")
        self.window = window
        self._counters: dict[str, dict[int, int]] = {}
        self._gauges: dict[str, _Gauge] = {}
        self._hists: dict[str, _Histogram] = {}

    # -- recording -------------------------------------------------------------

    def count(self, name: str, now, n: int = 1) -> None:
        """Add ``n`` events to counter ``name`` at timestamp ``now``.

        A zero increment is a no-op (it neither creates the counter nor
        an empty window), so callers can pass ``len(batch)`` directly.
        """
        if n == 0:
            return
        windows = self._counters.setdefault(name, {})
        w = _window_of(now, self.window)
        windows[w] = windows.get(w, 0) + n

    def gauge(self, name: str, now, value) -> None:
        """Record an instantaneous ``value`` of gauge ``name``."""
        series = self._gauges.get(name)
        if series is None:
            series = self._gauges[name] = _Gauge()
        series.record(_window_of(now, self.window), float(value))

    def observe(self, name: str, value,
                bounds: tuple[float, ...] | None = None) -> None:
        """Record ``value`` into histogram ``name``.

        The first observation fixes the bucket bounds (``bounds`` or
        :data:`DEFAULT_BOUNDS`); later ``bounds`` arguments are ignored
        so the distribution stays self-consistent.
        """
        hist = self._hists.get(name)
        if hist is None:
            hist = self._hists[name] = _Histogram(
                tuple(bounds) if bounds is not None else DEFAULT_BOUNDS)
        hist.record(float(value))

    # -- inspection ------------------------------------------------------------

    def counter_total(self, name: str) -> int:
        return sum(self._counters.get(name, {}).values())

    @property
    def empty(self) -> bool:
        return not (self._counters or self._gauges or self._hists)

    # -- exposition ------------------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        """Byte-deterministic JSON view (sorted keys, rounded floats)."""
        counters = {}
        for name in sorted(self._counters):
            windows = self._counters[name]
            counters[name] = {
                "total": sum(windows.values()),
                "windows": {str(w): windows[w] for w in sorted(windows)},
            }
        gauges = {}
        for name in sorted(self._gauges):
            series = self._gauges[name]
            gauges[name] = {
                "windows": {
                    str(w): {"last": _round(entry[0]),
                             "min": _round(entry[1]),
                             "max": _round(entry[2])}
                    for w, entry in sorted(series.windows.items())},
            }
        hists = {}
        for name in sorted(self._hists):
            hist = self._hists[name]
            hists[name] = {
                "bounds": [_round(b) for b in hist.bounds],
                "bucket_counts": list(hist.bucket_counts),
                "count": hist.count,
                "sum": _round(hist.total),
            }
        return {
            "schema": "repro.obs/series/v1",
            "window_cycles": self.window,
            "counters": counters,
            "gauges": gauges,
            "histograms": hists,
        }

    def json(self, indent: int = 2) -> str:
        return json.dumps(self.to_json(), indent=indent, sort_keys=True)

    def prom_text(self) -> str:
        """Prometheus text-format exposition of the final state."""
        lines: list[str] = []
        for name in sorted(self._counters):
            metric = prom_name(name) + "_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {self.counter_total(name)}")
        for name in sorted(self._gauges):
            metric = prom_name(name)
            series = self._gauges[name]
            last_window = max(series.windows)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {series.windows[last_window][0]:g}")
        for name in sorted(self._hists):
            metric = prom_name(name)
            hist = self._hists[name]
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, n in zip(hist.bounds, hist.bucket_counts):
                cumulative += n
                lines.append(f'{metric}_bucket{{le="{bound:g}"}} '
                             f"{cumulative}")
            lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.count}')
            lines.append(f"{metric}_sum {hist.total:g}")
            lines.append(f"{metric}_count {hist.count}")
        return "\n".join(lines) + ("\n" if lines else "")
