"""Chrome ``trace_event`` / Perfetto timeline export.

The recorder unifies the two clocks of the model — the HLS simulator's
fabric cycles and the SoC trace's component events share one timebase
already (both stamp ``sim.now``), so the exporter simply maps one
fabric cycle to one microsecond of Chrome trace time and emits:

* ``X`` (complete) events for kernel *state spans* — contiguous runs of
  one :class:`~repro.hls.kernel.KernelState`, run-length encoded as the
  simulation advances, so a stalled pipeline shows up as a long red
  ``stall_full`` block exactly where it happened;
* ``X`` events for DMA transfers and driver layers;
* ``C`` (counter) tracks for FIFO occupancy and cumulative DDR4
  traffic, sampled every ``counter_interval`` cycles;
* ``i`` (instant) events for every retained
  :class:`~repro.obs.events.TraceEvent` (CSR writes, instruction
  issues, DMA submissions, ...).

Load the exported JSON in https://ui.perfetto.dev or
``chrome://tracing``.  See ``docs/OBSERVABILITY.md`` for a guided
read-through.
"""

from __future__ import annotations

from typing import Any

# pid assignment comes from the shared registry so SoC, serving and
# flight tracks merge into one file without collisions (re-exported
# here for backward compatibility).
from repro.obs.trackreg import PID_KERNELS, PID_MEMORY, PID_SYSTEM

#: Kernel states skipped in span export (no information content).
_SKIP_STATES = ("done",)


class TimelineRecorder:
    """Per-cycle span/counter recorder feeding :func:`chrome_trace`."""

    def __init__(self, counter_interval: int = 32):
        if counter_interval < 1:
            raise ValueError("counter_interval must be >= 1")
        self.counter_interval = counter_interval
        self.state_spans: list[tuple[str, str, int, int]] = []
        self._open: dict[str, list] = {}    # kernel -> [state, start]
        self.counter_samples: list[tuple[int, dict[str, int]]] = []
        self._next_sample = 0
        self.dma_spans: list[tuple[str, int, int, bool]] = []
        self.layer_spans: list[tuple[str, int, int, str]] = []
        self._open_layers: dict[str, tuple[int, str]] = {}
        self.dram_traffic: list[tuple[int, int]] = []   # (cycle, cum values)
        self._dram_total = 0

    # -- recording (called via the Telemetry hub) ------------------------------

    def on_cycle(self, sim) -> None:
        now = sim.now
        for kernel in sim.kernels:
            state = kernel.state.value
            open_span = self._open.get(kernel.name)
            if open_span is None:
                self._open[kernel.name] = [state, now]
            elif open_span[0] != state:
                self.state_spans.append(
                    (kernel.name, open_span[0], open_span[1], now))
                open_span[0] = state
                open_span[1] = now
        if now >= self._next_sample:
            self._next_sample = now + self.counter_interval
            sample = {fifo.name: fifo.occupancy for fifo in sim.fifos}
            self.counter_samples.append((now, sample))
            self.dram_traffic.append((now, self._dram_total))

    def on_warp(self, sim, start: int, end: int) -> None:
        """Bulk :meth:`on_cycle` for the dead window ``[start, end)``.

        No kernel changes state and no FIFO moves a value during a dead
        window, so a single span update at ``start`` covers every
        skipped cycle, and each counter sample the per-cycle path would
        have taken is emitted with the (constant) current values —
        byte-identical output to stepping.
        """
        for kernel in sim.kernels:
            state = kernel.state.value
            open_span = self._open.get(kernel.name)
            if open_span is None:
                self._open[kernel.name] = [state, start]
            elif open_span[0] != state:
                self.state_spans.append(
                    (kernel.name, open_span[0], open_span[1], start))
                open_span[0] = state
                open_span[1] = start
        cycle = self._next_sample if self._next_sample > start else start
        if cycle < end:
            while cycle < end:
                sample = {fifo.name: fifo.occupancy for fifo in sim.fifos}
                self.counter_samples.append((cycle, sample))
                self.dram_traffic.append((cycle, self._dram_total))
                cycle += self.counter_interval
            self._next_sample = cycle

    def on_burst(self, sim, start: int, end: int) -> None:
        """Bulk :meth:`on_cycle` for a burst window ``[start, end)``.

        A burst window moves data, but its *end-of-cycle* observables
        are constant: every participant ends each cycle parked at its
        ``Tick`` (``sleeping``) and every queue ends each cycle back at
        occupancy 1, so the dead-window replay of :meth:`on_warp` —
        span update at ``start`` plus constant counter samples —
        produces byte-identical output to stepping.
        """
        self.on_warp(sim, start, end)

    def on_burst_window(self, sim, start: int, end: int, runs=None,
                        occ_at=None) -> None:
        """Bulk :meth:`on_cycle` for a replayed phase window ``[start, end)``.

        Unlike :meth:`on_burst`, a phase window may contain kernels
        whose end-of-cycle state *varies* (e.g. a writeback unit
        cycling stall/active/stall through each pad/pool period) and
        queues whose end-of-cycle occupancy differs from the
        post-window value.  ``runs`` supplies the per-participant state
        sequence as ``(kernel, ((state, start_cycle), ...))`` tuples —
        the run-length merge below reproduces exactly the spans
        per-cycle stepping would have recorded, including merges across
        the window boundary.  ``occ_at(cycle)`` returns occupancy
        overrides applied on top of the live (post-window) FIFO values
        for each counter sample the per-cycle path would have taken.
        """
        varying = {kernel.name: seq for kernel, seq in runs} if runs else {}
        for kernel in sim.kernels:
            seq = varying.get(kernel.name)
            if seq is None:
                state = kernel.state.value
                open_span = self._open.get(kernel.name)
                if open_span is None:
                    self._open[kernel.name] = [state, start]
                elif open_span[0] != state:
                    self.state_spans.append(
                        (kernel.name, open_span[0], open_span[1], start))
                    open_span[0] = state
                    open_span[1] = start
                continue
            open_span = self._open.get(kernel.name)
            for state, run_start in seq:
                if open_span is None:
                    open_span = self._open[kernel.name] = [state, run_start]
                elif open_span[0] != state:
                    self.state_spans.append(
                        (kernel.name, open_span[0], open_span[1], run_start))
                    open_span[0] = state
                    open_span[1] = run_start
        cycle = self._next_sample if self._next_sample > start else start
        if cycle < end:
            while cycle < end:
                sample = {fifo.name: fifo.occupancy for fifo in sim.fifos}
                if occ_at is not None:
                    sample.update(occ_at(cycle))
                self.counter_samples.append((cycle, sample))
                self.dram_traffic.append((cycle, self._dram_total))
                cycle += self.counter_interval
            self._next_sample = cycle

    def add_dma_span(self, descriptor, start: int, cycles: int,
                     ok: bool) -> None:
        label = (f"{descriptor.direction.value} bank{descriptor.bank} "
                 f"n={descriptor.count}")
        self.dma_spans.append((label, start, max(1, cycles), ok))

    def note_dram(self, now: int, kind: str, count: int) -> None:
        self._dram_total += count

    def begin_layer(self, name: str, cycle: int,
                    kind: str = "layer") -> None:
        self._open_layers[name] = (cycle, kind)

    def end_layer(self, name: str, cycle: int) -> None:
        start, kind = self._open_layers.pop(name, (cycle, "layer"))
        self.layer_spans.append((name, start, cycle, kind))

    def finish(self, sim) -> None:
        """Close spans still open at the current cycle (idempotent)."""
        now = sim.now
        for name, (state, start) in list(self._open.items()):
            if now > start:
                self.state_spans.append((name, state, start, now))
                self._open[name] = [state, now]


# -- export ----------------------------------------------------------------------


def chrome_trace(telemetry) -> dict[str, Any]:
    """Render a hub's timeline into Chrome ``trace_event`` JSON format.

    Returns the trace object (``{"traceEvents": [...], ...}``); dump it
    with ``json.dump`` and open it in Perfetto.  One fabric cycle is
    exported as one microsecond.
    """
    recorder = telemetry.timeline
    if recorder is None:
        raise ValueError(
            "telemetry was created without timeline=True; nothing to export")
    if telemetry.sim is not None:
        recorder.finish(telemetry.sim)
    events: list[dict[str, Any]] = []

    def meta(pid: int, name: str) -> None:
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": name}})

    meta(PID_KERNELS, "streaming kernels")
    meta(PID_MEMORY, "memory & dma")
    meta(PID_SYSTEM, "soc system")

    tids: dict[str, int] = {}

    def kernel_tid(name: str) -> int:
        if name not in tids:
            tids[name] = len(tids) + 1
            events.append({"name": "thread_name", "ph": "M",
                           "pid": PID_KERNELS, "tid": tids[name],
                           "args": {"name": name}})
        return tids[name]

    for name, state, start, end in recorder.state_spans:
        if state in _SKIP_STATES:
            continue
        events.append({"name": state, "cat": "kernel-state", "ph": "X",
                       "ts": start, "dur": end - start,
                       "pid": PID_KERNELS, "tid": kernel_tid(name)})
    for label, start, duration, ok in recorder.dma_spans:
        events.append({"name": label, "cat": "dma", "ph": "X",
                       "ts": start, "dur": duration,
                       "pid": PID_MEMORY, "tid": 1,
                       "args": {"ok": ok}})
    for name, start, end, kind in recorder.layer_spans:
        events.append({"name": name, "cat": "layer", "ph": "X",
                       "ts": start, "dur": max(1, end - start),
                       "pid": PID_SYSTEM, "tid": 1,
                       "args": {"kind": kind}})
    for cycle, sample in recorder.counter_samples:
        for fifo_name, occupancy in sample.items():
            events.append({"name": f"fifo {fifo_name}", "cat": "fifo",
                           "ph": "C", "ts": cycle, "pid": PID_MEMORY,
                           "tid": 0, "args": {"occupancy": occupancy}})
    for cycle, total in recorder.dram_traffic:
        events.append({"name": "ddr4 values moved", "cat": "dram",
                       "ph": "C", "ts": cycle, "pid": PID_MEMORY,
                       "tid": 0, "args": {"values": total}})

    source_tids: dict[str, int] = {}

    def system_tid(source: str) -> int:
        if source not in source_tids:
            source_tids[source] = len(source_tids) + 2
            events.append({"name": "thread_name", "ph": "M",
                           "pid": PID_SYSTEM, "tid": source_tids[source],
                           "args": {"name": source}})
        return source_tids[source]

    if telemetry.soc is not None:
        for event in telemetry.soc.trace.events:
            events.append({"name": event.event, "cat": "soc", "ph": "i",
                           "ts": event.cycle, "pid": PID_SYSTEM,
                           "tid": system_tid(event.source), "s": "t",
                           "args": {"detail": event.detail}})
    if telemetry.sim is not None and telemetry.sim.trace:
        for event in telemetry.sim.events:
            events.append({"name": event.event, "cat": "hls", "ph": "i",
                           "ts": event.cycle, "pid": PID_KERNELS,
                           "tid": kernel_tid(event.source), "s": "t",
                           "args": {"detail": event.detail}})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "1 fabric cycle exported as 1 us of trace time",
            "generator": "repro.obs.timeline",
        },
    }
