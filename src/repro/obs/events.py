"""Unified trace events and the bounded event buffer.

Before the observability subsystem, the repo carried two disjoint,
structurally identical event records: ``repro.hls.sim.TraceEvent``
(field ``kernel``) and ``repro.soc.trace.SocEvent`` (field
``component``).  Both are now this single :class:`TraceEvent`; the old
names remain importable as thin aliases (``SocEvent is TraceEvent``)
and the old field names are read-only properties, so existing call
sites and tests keep working unchanged.

:class:`TraceBuffer` replaces the old append-only ``SocTrace``.  The
old buffer silently kept the *oldest* events once ``limit`` was reached
and dropped everything newer — exactly the wrong half when debugging a
hang at the end of a run.  The buffer is now a ring by default
(``keep="tail"``: the most recent ``limit`` events survive); the old
behaviour is available explicitly with ``keep="head"``.  Either way
``dropped`` counts the evictions and :meth:`TraceBuffer.format` says
what was lost.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class TraceEvent:
    """One traced event, on the unified fabric clock.

    ``source`` names the emitting entity — a streaming kernel
    (``acc0.conv2``), an SoC component (``arm``, ``dma``, ``bus``,
    ``accelerator``) — so HLS-level and system-level events interleave
    in one timeline.
    """

    cycle: int
    source: str
    event: str       # e.g. "read", "csr_write", "dma_to_bank"
    detail: str = ""

    @property
    def kernel(self) -> str:
        """Compat alias for the old HLS ``TraceEvent.kernel`` field."""
        return self.source

    @property
    def component(self) -> str:
        """Compat alias for the old ``SocEvent.component`` field."""
        return self.source


class TraceBuffer:
    """Bounded shared event buffer.

    Parameters
    ----------
    limit:
        Maximum events retained.
    keep:
        ``"tail"`` (default): ring buffer — once full, recording a new
        event evicts the oldest, so the *most recent* ``limit`` events
        survive.  ``"head"``: the legacy behaviour — the first
        ``limit`` events are kept and later ones are discarded.
    """

    def __init__(self, limit: int = 100_000, keep: str = "tail"):
        if limit < 1:
            raise ValueError(f"trace limit must be >= 1, got {limit}")
        if keep not in ("tail", "head"):
            raise ValueError(f"keep must be 'tail' or 'head', got {keep!r}")
        self.limit = limit
        self.keep = keep
        self.dropped = 0
        self._events: deque[TraceEvent] = deque()

    # -- recording -------------------------------------------------------------

    def record(self, cycle: int, source: str, event: str,
               detail: str = "") -> None:
        if len(self._events) >= self.limit:
            self.dropped += 1
            if self.keep == "head":
                return
            self._events.popleft()
        self._events.append(TraceEvent(cycle, source, event, detail))

    # -- queries ---------------------------------------------------------------

    @property
    def events(self) -> list[TraceEvent]:
        """Retained events in recording order (a copy)."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def by_source(self, source: str) -> list[TraceEvent]:
        return [e for e in self._events if e.source == source]

    # Compat alias for the old ``SocTrace.by_component``.
    by_component = by_source

    # -- rendering -------------------------------------------------------------

    def format(self, limit: int = 50) -> str:
        events = self.events
        lines = [f"{'cycle':>10}  {'source':<12} {'event':<18} detail"]
        for event in events[:limit]:
            lines.append(f"{event.cycle:>10}  {event.source:<12} "
                         f"{event.event:<18} {event.detail}")
        if len(events) > limit:
            lines.append(f"... {len(events) - limit} more events")
        if self.dropped:
            kept = ("most recent kept" if self.keep == "tail"
                    else "oldest kept")
            lines.append(f"({self.dropped} events dropped at "
                         f"limit {self.limit}; {kept})")
        return "\n".join(lines)
