"""Profiling workloads: scaled VGG-16 conv layers through the SoC.

Full 224x224 VGG-16 layers are far beyond what the Python cycle-accurate
simulator can execute in reasonable time (the analytic model in
:mod:`repro.perf` exists precisely for that reason), so ``repro
profile`` runs *scaled* versions of the VGG-16 convolutions — same 3x3
kernels, same driver path (DMA staging, instruction issue, streaming
compute, write-back), channel counts and feature-map sizes clamped to
simulator-friendly values.  Every report clearly labels the scaled
geometry; the point is per-layer *attribution* (where cycles go and
what blocks the pipeline), not absolute VGG-16 cycle counts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.nn.vgg16 import VGG16_BLOCKS, VGG16_CONV_NAMES
from repro.obs.metrics import MetricsReport, Telemetry
from repro.obs.profiler import BottleneckTable, bottleneck_table

#: The representative per-block subset run by ``repro profile vgg16``.
VGG16_REPRESENTATIVES = ["conv1_1", "conv2_1", "conv3_1", "conv4_1",
                         "conv5_1"]


@dataclass(frozen=True)
class ProfileWorkload:
    """One scaled conv layer: driver-visible geometry plus provenance."""

    name: str
    in_channels: int
    out_channels: int
    hw: int              # padded IFM height/width (3x3 conv -> hw-2 out)
    full_in: int         # the real VGG-16 channel counts, for the label
    full_out: int

    @property
    def scaled(self) -> bool:
        return (self.in_channels != self.full_in
                or self.out_channels != self.full_out)


def _full_channels() -> dict[str, tuple[int, int]]:
    """Real VGG-16 (in, out) channel counts per conv layer name."""
    table = {}
    in_ch = 3
    for block, widths in VGG16_BLOCKS:
        for i, out_ch in enumerate(widths, start=1):
            table[f"conv{block}_{i}"] = (in_ch, out_ch)
            in_ch = out_ch
    return table


def scaled_workload(name: str, smoke: bool = False) -> ProfileWorkload:
    """The scaled stand-in for VGG-16 conv layer ``name``."""
    channels = _full_channels()
    if name not in channels:
        raise ValueError(
            f"unknown VGG-16 conv layer {name!r}; expected one of "
            f"{', '.join(VGG16_CONV_NAMES)}")
    full_in, full_out = channels[name]
    if smoke:
        in_ch, out_ch, hw = min(full_in, 4), min(full_out, 8), 10
    else:
        in_ch, out_ch, hw = min(full_in, 8), min(full_out, 16), 14
    return ProfileWorkload(name=name, in_channels=in_ch,
                           out_channels=out_ch, hw=hw,
                           full_in=full_in, full_out=full_out)


def select_workloads(target: str, smoke: bool = False
                     ) -> list[ProfileWorkload]:
    """Resolve a CLI target (layer name or ``vgg16``) to workloads."""
    if target == "vgg16":
        return [scaled_workload(name, smoke)
                for name in VGG16_REPRESENTATIVES]
    return [scaled_workload(target, smoke)]


@dataclass
class ProfileResult:
    """Everything one profiling run produced."""

    target: str
    smoke: bool
    workloads: list[ProfileWorkload]
    telemetry: Telemetry
    report: MetricsReport
    table: BottleneckTable
    model_cycles: dict[str, int] = field(default_factory=dict)
    #: ``repro.obs.cache_stats()`` snapshot (counters reset per run,
    #: so the JSON stays byte-deterministic).
    cache: dict[str, Any] = field(default_factory=dict)
    #: Host wall-clock profiler, when one was armed for the run.
    hostprof: Any = None

    def format(self) -> str:
        scale = "smoke" if self.smoke else "default"
        lines = [f"profile: {self.target} "
                 f"(scaled VGG-16 workloads, {scale} scale)"]
        for w in self.workloads:
            note = (f" [full layer: {w.full_in}->{w.full_out} ch]"
                    if w.scaled else "")
            lines.append(f"  {w.name}: {w.in_channels}->{w.out_channels} ch, "
                         f"{w.hw}x{w.hw} IFM{note}")
        lines.append("")
        lines.append(self.table.format())
        lines.append("")
        lines.append(self.report.format())
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        return {
            "target": self.target,
            "smoke": self.smoke,
            "workloads": [{
                "name": w.name, "in_channels": w.in_channels,
                "out_channels": w.out_channels, "hw": w.hw,
                "full_in": w.full_in, "full_out": w.full_out,
            } for w in self.workloads],
            "bottlenecks": self.table.to_json(),
            "metrics": self.report.to_json(),
            "model_cycles": dict(self.model_cycles),
            "cache": {name: dict(stats) for name, stats
                      in sorted(self.cache.items())},
            "hostprof": (self.hostprof.to_json()
                         if self.hostprof is not None else None),
        }

    def json(self, indent: int = 2) -> str:
        return json.dumps(self.to_json(), indent=indent)

    def chrome_trace(self) -> dict[str, Any]:
        from repro.obs.timeline import chrome_trace
        return chrome_trace(self.telemetry)


def run_profile(target: str = "conv1_1", smoke: bool = False,
                seed: int = 0, timeline: bool = False,
                bank_capacity: int = 1 << 14,
                hostprof: Any = None) -> ProfileResult:
    """Profile scaled VGG-16 conv layer(s) end-to-end through the SoC.

    Each selected layer runs the full driver path on one shared system
    (DMA in, weights in, streaming compute, DMA out) with a
    :class:`~repro.obs.metrics.Telemetry` hub attached; the analytic
    cycle model is evaluated on the *same scaled geometry* so the
    bottleneck table's model column is apples-to-apples.

    ``hostprof`` — an optional
    :class:`~repro.obs.hostprof.HostProfiler` armed on the simulator
    for the whole run (wall-clock by kernel family × execution mode).
    Cache counters are reset at run start so the result's ``cache``
    section (and therefore the JSON document) is byte-deterministic.
    """
    from repro.core.packing import PackedLayer
    from repro.obs.cache import cache_stats, reset_caches
    from repro.perf.cycle_model import CycleModelParams, conv_layer_cycles
    from repro.soc.driver import InferenceDriver, SocSystem

    reset_caches()
    workloads = select_workloads(target, smoke)
    soc = SocSystem(bank_capacity=bank_capacity)
    telemetry = Telemetry(timeline=timeline).attach(soc)
    if hostprof is not None:
        soc.sim.hostprof = hostprof
    driver = InferenceDriver(soc)
    rng = np.random.default_rng(seed)
    params = CycleModelParams(bank_capacity=bank_capacity,
                              dma_bytes_per_cycle=32)
    model_cycles: dict[str, int] = {}
    for w in workloads:
        ifm = rng.integers(-32, 32, size=(w.in_channels, w.hw, w.hw),
                           dtype=np.int16)
        weights = rng.integers(
            -16, 16, size=(w.out_channels, w.in_channels, 3, 3)
        ).astype(np.int8)
        # ~40% pruning, the regime where backpressure patterns emerge.
        weights[rng.random(weights.shape) >= 0.6] = 0
        biases = rng.integers(-64, 64, size=(w.out_channels,)) \
            .astype(np.int64)
        packed = PackedLayer.pack(weights)
        handle = driver.load_feature_map(ifm)
        driver.load_packed_weights(w.name, packed)
        driver.run_conv(handle, w.name, packed, biases,
                        shift=2, apply_relu=True)
        modeled = conv_layer_cycles(
            w.name, (w.in_channels, w.hw, w.hw),
            (w.out_channels, w.hw - 2, w.hw - 2), 3,
            packed.nnz_matrix(), params)
        model_cycles[w.name] = modeled.cycles
    table = bottleneck_table(telemetry, model_cycles)
    return ProfileResult(target=target, smoke=smoke, workloads=workloads,
                         telemetry=telemetry, report=telemetry.report(),
                         table=table, model_cycles=model_cycles,
                         cache=cache_stats(), hostprof=hostprof)
