"""Host wall-clock profiler: Python time by kernel family × mode.

The cycle-accurate simulator executes in three modes — scalar stepping
(one Python generator resume per live kernel per cycle), cycle-warp
(dead windows jumped in O(1)) and burst (steady-state MAC windows
replayed as batched numpy).  The ROADMAP's burst-coverage item says
"profile first, attack the largest residual": this module answers
*which kernel family's scalar cycles dominate the remaining Python
time*, i.e. what to vectorize next.

:class:`HostProfiler` plugs into the simulator's ``hostprof`` slot
(``sim.hostprof = HostProfiler()``); the slot follows the repo's
zero-overhead contract — ``None`` on the clean path, and the profiled
loop is a separate branch so un-profiled runs execute the exact
original loop.  When armed it times every warp window, burst window
and scalar step with ``perf_counter`` and, on scalar steps, counts one
*live kernel-cycle* per non-finished kernel (the stepper's actual unit
of Python work) bucketed by :func:`kernel_family`.

Determinism: cycle counts and kernel-cycle counts are exact properties
of the simulation, so :meth:`HostProfiler.to_json` (which excludes
wall seconds) is byte-deterministic per seed; wall-clock numbers
appear only in the human-readable :meth:`HostProfiler.format` table.
"""

from __future__ import annotations

import json
from typing import Any

#: Kernel families the accelerator pipeline decomposes into.
FAMILIES = ("staging", "conv", "accum", "padpool", "writeback", "dma",
            "control", "host")

_STEM_FAMILIES = {"staging", "conv", "accum", "padpool", "writeback"}
_CONTROL_STEMS = {"issue", "doneproc", "arbiter", "engine"}


def kernel_family(name: str) -> str:
    """Classify a kernel name into its pipeline family.

    ``acc0.conv1`` → ``conv``; ``dma.engine`` → ``dma``;
    ``acc0.issue`` / ``acc0.doneproc`` → ``control``; anything
    unrecognized (ARM-host helper kernels, test fixtures) → ``host``.
    """
    stem = name.rsplit(".", 1)[-1].rstrip("0123456789")
    if name.startswith("dma.") or stem == "dma":
        return "dma"
    if stem in _STEM_FAMILIES:
        return stem
    if stem in _CONTROL_STEMS:
        return "control"
    return "host"


class HostProfiler:
    """Wall-clock + kernel-cycle accumulator for one simulator run."""

    def __init__(self):
        self.scalar_cycles = 0
        self.scalar_wall = 0.0
        self.warp_cycles = 0
        self.warp_windows = 0
        self.warp_wall = 0.0
        self.burst_cycles = 0
        self.burst_windows = 0
        self.burst_wall = 0.0
        #: family -> live kernel-cycles stepped scalar (deterministic).
        self.family_scalar: dict[str, int] = {}
        #: family -> wall seconds attributed (scalar steps, split
        #: evenly across the live kernels of that step).
        self.family_wall: dict[str, float] = {}
        self._family_of: dict[str, str] = {}

    # -- hooks (called by the simulator's profiled loop) -----------------------

    def on_warp(self, cycles: int, wall: float) -> None:
        self.warp_cycles += cycles
        self.warp_windows += 1
        self.warp_wall += wall

    def on_burst(self, cycles: int, wall: float) -> None:
        self.burst_cycles += cycles
        self.burst_windows += 1
        self.burst_wall += wall

    def on_scalar(self, sim, wall: float) -> None:
        self.scalar_cycles += 1
        self.scalar_wall += wall
        cache = self._family_of
        live: list[str] = []
        for kernel in sim.kernels:
            if kernel.finished:
                continue
            family = cache.get(kernel.name)
            if family is None:
                family = cache[kernel.name] = kernel_family(kernel.name)
            self.family_scalar[family] = \
                self.family_scalar.get(family, 0) + 1
            live.append(family)
        if live:
            share = wall / len(live)
            for family in live:
                self.family_wall[family] = \
                    self.family_wall.get(family, 0.0) + share

    # -- derived ---------------------------------------------------------------

    @property
    def total_cycles(self) -> int:
        return self.scalar_cycles + self.warp_cycles + self.burst_cycles

    @property
    def total_wall(self) -> float:
        return self.scalar_wall + self.warp_wall + self.burst_wall

    def ranking(self) -> list[str]:
        """Families by scalar live kernel-cycles, largest residual first.

        This is the "vectorize next" order: the family whose kernels
        the scalar stepper resumes most often is where batched replay
        (ROADMAP burst-coverage item) buys the most wall time.
        Deterministic: ranked on exact counts, names break ties.
        """
        return sorted(self.family_scalar,
                      key=lambda f: (-self.family_scalar[f], f))

    def to_json(self) -> dict[str, Any]:
        """Byte-deterministic JSON (cycle counts only, no wall time)."""
        total_scalar = sum(self.family_scalar.values())
        return {
            "schema": "repro.obs/hostprof/v1",
            "modes": {
                "scalar": {"cycles": self.scalar_cycles},
                "warp": {"cycles": self.warp_cycles,
                         "windows": self.warp_windows},
                "burst": {"cycles": self.burst_cycles,
                          "windows": self.burst_windows},
            },
            "total_cycles": self.total_cycles,
            "families": [{
                "family": family,
                "scalar_kernel_cycles": self.family_scalar[family],
                "share": (round(self.family_scalar[family]
                                / total_scalar, 6)
                          if total_scalar else 0.0),
            } for family in self.ranking()],
            "vectorize_next": self.ranking(),
        }

    def json(self, indent: int = 2) -> str:
        return json.dumps(self.to_json(), indent=indent, sort_keys=True)

    def format(self) -> str:
        lines = ["hostprof: Python wall-clock by execution mode",
                 f"{'mode':<10}{'cycles':>10}{'windows':>9}"
                 f"{'wall s':>9}{'cyc/s':>12}"]
        rows = [("scalar", self.scalar_cycles, self.scalar_cycles,
                 self.scalar_wall),
                ("warp", self.warp_cycles, self.warp_windows,
                 self.warp_wall),
                ("burst", self.burst_cycles, self.burst_windows,
                 self.burst_wall)]
        for mode, cycles, windows, wall in rows:
            rate = cycles / wall if wall > 0 else 0.0
            lines.append(f"{mode:<10}{cycles:>10}{windows:>9}"
                         f"{wall:>9.3f}{rate:>12.0f}")
        lines.append("")
        lines.append("vectorize next (scalar-residual ranking):")
        lines.append(f"{'family':<12}{'scalar kcyc':>12}{'share':>8}"
                     f"{'est wall s':>12}")
        total_scalar = sum(self.family_scalar.values())
        for family in self.ranking():
            count = self.family_scalar[family]
            share = count / total_scalar if total_scalar else 0.0
            lines.append(
                f"{family:<12}{count:>12}{100 * share:>7.1f}%"
                f"{self.family_wall.get(family, 0.0):>12.3f}")
        if not self.family_scalar:
            lines.append("(no scalar steps: everything warped/bursted)")
        return "\n".join(lines)
