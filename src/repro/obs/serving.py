"""Serving-layer timeline: batch spans + queue tracks for Perfetto.

The serving simulator (:mod:`repro.serve`) runs on the same timebase
as everything else in the reproduction — accelerator fabric cycles —
so its spans drop straight into the Chrome ``trace_event`` mapping the
kernel-level exporter (:mod:`repro.obs.timeline`) established: one
fabric cycle is one microsecond of trace time.  The process id comes
from the shared :mod:`repro.obs.trackreg` registry, so a serving
trace merges into one file with SoC and flight-recorder tracks.

Tracks emitted:

* one thread per accelerator instance under a ``serving`` process,
  with an ``X`` (complete) span per batch execution — resubmitted
  (faulted) attempts are flagged in the span arguments;
* ``C`` (counter) tracks for admission-queue depth and in-flight
  batches, sampled event-driven (every scheduler event), which is
  exact: the counters only change at events;
* ``i`` (instant) markers for the resilience machinery — hedged
  re-dispatches, circuit-breaker ejections, half-open probes and
  scripted fail-stops — pinned to the instance thread they happened
  on, carrying the same ``args: {"detail": ...}`` metadata schema as
  the SoC exporter's instants.

Underneath the event-exact samples, every observation also lands in a
windowed :class:`~repro.obs.series.TimeSeries` (rolling counters,
gauges and latency histograms on fixed cycle windows) — the canonical
machine-readable artifact, byte-deterministic per seed.
"""

from __future__ import annotations

from typing import Any

from repro.obs.series import TimeSeries
from repro.obs.trackreg import PID_SERVING, process_meta


class ServingTimeline:
    """Event-driven recorder the serve scheduler feeds."""

    def __init__(self, series_window: int = 4096):
        self.batch_spans: list[tuple[int, str, float, float, bool,
                                     dict[str, Any]]] = []
        self.samples: list[tuple[float, int, int]] = []
        self.instants: list[tuple[str, float, int, dict[str, Any]]] = []
        self._last_sample: tuple[int, int] | None = None
        #: Windowed counters/gauges/histograms (``repro.obs.series``).
        self.series = TimeSeries(window=series_window)

    def add_batch_span(self, instance: int, label: str, start, end,
                       ok: bool, **args: Any) -> None:
        self.batch_spans.append((instance, label, float(start),
                                 float(end), ok, dict(args)))

    def add_instant(self, name: str, now, instance: int,
                    **args: Any) -> None:
        """Record a point event (hedge/eject/probe/fail-stop)."""
        self.instants.append((name, float(now), instance, dict(args)))

    def sample(self, now, queue_depth: int, inflight: int) -> None:
        """Record counter values at an event (deduplicated)."""
        self.series.gauge("queue_depth", now, queue_depth)
        self.series.gauge("inflight_batches", now, inflight)
        state = (queue_depth, inflight)
        if state == self._last_sample and self.samples:
            return
        self._last_sample = state
        self.samples.append((float(now), queue_depth, inflight))

    def count(self, name: str, now, n: int = 1) -> None:
        """Bump windowed counter ``name`` (arrivals, drops, faults...)."""
        self.series.count(name, now, n)

    def observe(self, name: str, value) -> None:
        """Record ``value`` into the windowed histogram ``name``."""
        self.series.observe(name, value)

    def chrome_trace(self) -> dict[str, Any]:
        """Render the recording as a Chrome/Perfetto trace document."""
        events: list[dict[str, Any]] = [process_meta(PID_SERVING)]
        instances = sorted({span[0] for span in self.batch_spans}
                           | {instant[2] for instant in self.instants})
        for instance in instances:
            events.append({"ph": "M", "pid": PID_SERVING,
                           "tid": instance + 1, "name": "thread_name",
                           "args": {"name": f"acc{instance}"}})
        for instance, label, start, end, ok, args in self.batch_spans:
            events.append({
                "ph": "X", "pid": PID_SERVING, "tid": instance + 1,
                "name": label, "ts": start,
                "dur": max(end - start, 1e-6),
                "cat": "batch" if ok else "batch,fault",
                "args": {"ok": ok, **args},
            })
        for name, now, instance, args in self.instants:
            events.append({
                "ph": "i", "pid": PID_SERVING, "tid": instance + 1,
                "name": name, "ts": now, "s": "t",
                "cat": "resilience", "args": {"detail": dict(args)},
            })
        for now, queue_depth, inflight in self.samples:
            events.append({"ph": "C", "pid": PID_SERVING, "tid": 0,
                           "name": "queue depth", "ts": now,
                           "args": {"requests": queue_depth}})
            events.append({"ph": "C", "pid": PID_SERVING, "tid": 0,
                           "name": "inflight batches", "ts": now,
                           "args": {"batches": inflight}})
        return {"traceEvents": events, "displayTimeUnit": "ms"}
