"""Serving-layer timeline: batch spans + queue tracks for Perfetto.

The serving simulator (:mod:`repro.serve`) runs on the same timebase
as everything else in the reproduction — accelerator fabric cycles —
so its spans drop straight into the Chrome ``trace_event`` mapping the
kernel-level exporter (:mod:`repro.obs.timeline`) established: one
fabric cycle is one microsecond of trace time.

Tracks emitted:

* one thread per accelerator instance under a ``serving`` process,
  with an ``X`` (complete) span per batch execution — resubmitted
  (faulted) attempts are flagged in the span arguments;
* ``C`` (counter) tracks for admission-queue depth and in-flight
  batches, sampled event-driven (every scheduler event), which is
  exact: the counters only change at events;
* ``i`` (instant) markers for the resilience machinery — hedged
  re-dispatches, circuit-breaker ejections, half-open probes and
  scripted fail-stops — pinned to the instance thread they happened
  on, so a chaos run reads as a story in the Perfetto UI.
"""

from __future__ import annotations

from typing import Any

#: pid for the serving process (kernel exporter uses 1..3).
PID_SERVING = 4


class ServingTimeline:
    """Event-driven recorder the serve scheduler feeds."""

    def __init__(self):
        self.batch_spans: list[tuple[int, str, float, float, bool,
                                     dict[str, Any]]] = []
        self.samples: list[tuple[float, int, int]] = []
        self.instants: list[tuple[str, float, int, dict[str, Any]]] = []
        self._last_sample: tuple[int, int] | None = None

    def add_batch_span(self, instance: int, label: str, start, end,
                       ok: bool, **args: Any) -> None:
        self.batch_spans.append((instance, label, float(start),
                                 float(end), ok, dict(args)))

    def add_instant(self, name: str, now, instance: int,
                    **args: Any) -> None:
        """Record a point event (hedge/eject/probe/fail-stop)."""
        self.instants.append((name, float(now), instance, dict(args)))

    def sample(self, now, queue_depth: int, inflight: int) -> None:
        """Record counter values at an event (deduplicated)."""
        state = (queue_depth, inflight)
        if state == self._last_sample and self.samples:
            return
        self._last_sample = state
        self.samples.append((float(now), queue_depth, inflight))

    def chrome_trace(self) -> dict[str, Any]:
        """Render the recording as a Chrome/Perfetto trace document."""
        events: list[dict[str, Any]] = [
            {"ph": "M", "pid": PID_SERVING, "name": "process_name",
             "args": {"name": "serving"}},
        ]
        instances = sorted({span[0] for span in self.batch_spans}
                           | {instant[2] for instant in self.instants})
        for instance in instances:
            events.append({"ph": "M", "pid": PID_SERVING,
                           "tid": instance + 1, "name": "thread_name",
                           "args": {"name": f"acc{instance}"}})
        for instance, label, start, end, ok, args in self.batch_spans:
            events.append({
                "ph": "X", "pid": PID_SERVING, "tid": instance + 1,
                "name": label, "ts": start,
                "dur": max(end - start, 1e-6),
                "cat": "batch" if ok else "batch,fault",
                "args": {"ok": ok, **args},
            })
        for name, now, instance, args in self.instants:
            events.append({
                "ph": "i", "pid": PID_SERVING, "tid": instance + 1,
                "name": name, "ts": now, "s": "t",
                "cat": "resilience", "args": dict(args),
            })
        for now, queue_depth, inflight in self.samples:
            events.append({"ph": "C", "pid": PID_SERVING, "tid": 0,
                           "name": "queue depth", "ts": now,
                           "args": {"requests": queue_depth}})
            events.append({"ph": "C", "pid": PID_SERVING, "tid": 0,
                           "name": "inflight batches", "ts": now,
                           "args": {"batches": inflight}})
        return {"traceEvents": events, "displayTimeUnit": "ms"}
