"""Backpressure profiler: the per-layer bottleneck table.

The :class:`~repro.obs.metrics.Telemetry` hub charges every stall cycle
of every kernel to the resource that blocked it (which FIFO, and
whether it was full or empty, or which barrier).  This module rolls
those attributions up per driver layer into a bottleneck table — for
each layer: where its cycles went, which resource blocked the pipeline
the longest, and (optionally) how the measured cycles compare to the
analytic predictions of :mod:`repro.perf.cycle_model`.

The table is *exactly exhaustive*: a final ``(outside layers)`` row
absorbs the cycles spent between layer brackets (weight preloading,
host-only phases), so the rows always sum to the simulator's cycle
count — the acceptance invariant of the observability PR.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

#: Row name of the residual bucket covering cycles between layers.
RESIDUAL_ROW = "(outside layers)"


@dataclass(frozen=True)
class BottleneckRow:
    """One layer (or the residual) in the bottleneck table."""

    name: str
    kind: str
    cycles: int
    dma_busy_cycles: int
    dma_values: int
    stall_cycles: int          # attributed kernel-stall cycles in the layer
    bottleneck: str            # heaviest blocking resource
    bottleneck_cycles: int
    bank_conflicts: int = 0
    model_cycles: int | None = None

    @property
    def model_error(self) -> float | None:
        """Signed (model - measured) / measured, when a model is given."""
        if self.model_cycles is None or self.cycles == 0:
            return None
        return (self.model_cycles - self.cycles) / self.cycles


@dataclass
class BottleneckTable:
    """Per-layer cycle attribution; rows sum exactly to ``total_cycles``."""

    total_cycles: int
    rows: list[BottleneckRow] = field(default_factory=list)

    @property
    def layer_rows(self) -> list[BottleneckRow]:
        return [row for row in self.rows if row.name != RESIDUAL_ROW]

    def format(self) -> str:
        has_model = any(row.model_cycles is not None for row in self.rows)
        lines = [f"per-layer bottleneck table "
                 f"({self.total_cycles} fabric cycles)"]
        header = (f"{'layer':<18}{'kind':<6}{'cycles':>9}{'share':>7}"
                  f"{'dma busy':>9}{'stall':>8}  {'top bottleneck':<28}")
        if has_model:
            header += f"{'model':>9}{'err':>8}"
        lines.append(header)
        for row in self.rows:
            share = (100 * row.cycles / self.total_cycles
                     if self.total_cycles else 0.0)
            blocker = (f"{row.bottleneck} [{row.bottleneck_cycles}]"
                       if row.bottleneck_cycles else "-")
            line = (f"{row.name:<18}{row.kind:<6}{row.cycles:>9}"
                    f"{share:>6.1f}%{row.dma_busy_cycles:>9}"
                    f"{row.stall_cycles:>8}  {blocker:<28}")
            if has_model:
                if row.model_cycles is None:
                    line += f"{'-':>9}{'-':>8}"
                else:
                    line += (f"{row.model_cycles:>9}"
                             f"{100 * row.model_error:>+7.1f}%")
            lines.append(line)
        covered = sum(row.cycles for row in self.rows)
        lines.append(f"{'total':<18}{'':<6}{covered:>9}"
                     f"{'100.0%' if covered == self.total_cycles else '!':>7}")
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        return {
            "total_cycles": self.total_cycles,
            "rows": [{
                "name": row.name, "kind": row.kind, "cycles": row.cycles,
                "dma_busy_cycles": row.dma_busy_cycles,
                "dma_values": row.dma_values,
                "stall_cycles": row.stall_cycles,
                "bottleneck": row.bottleneck,
                "bottleneck_cycles": row.bottleneck_cycles,
                "bank_conflicts": row.bank_conflicts,
                "model_cycles": row.model_cycles,
                "model_error": row.model_error,
            } for row in self.rows],
        }

    def json(self, indent: int = 2) -> str:
        return json.dumps(self.to_json(), indent=indent)


def bottleneck_table(telemetry,
                     model_cycles: dict[str, int] | None = None
                     ) -> BottleneckTable:
    """Roll a hub's per-layer metrics into a :class:`BottleneckTable`.

    ``model_cycles`` optionally maps layer names to analytic predictions
    (:func:`repro.perf.cycle_model.conv_layer_cycles`); matched layers
    gain model/error columns.  The residual row makes the table total
    equal ``telemetry.sim.now`` exactly.
    """
    model_cycles = model_cycles or {}
    total = telemetry.sim.now if telemetry.sim is not None else 0
    rows: list[BottleneckRow] = []
    for layer in telemetry.layers:
        resource, blocked = layer.top_bottleneck
        rows.append(BottleneckRow(
            name=layer.name, kind=layer.kind, cycles=layer.cycles,
            dma_busy_cycles=layer.dma_busy_cycles,
            dma_values=layer.dma_values,
            stall_cycles=sum(layer.stall_by_resource.values()),
            bottleneck=resource, bottleneck_cycles=blocked,
            bank_conflicts=layer.bank_conflicts,
            model_cycles=model_cycles.get(layer.name)))
    residual = total - sum(row.cycles for row in rows)
    if residual:
        rows.append(BottleneckRow(
            name=RESIDUAL_ROW, kind="-", cycles=residual,
            dma_busy_cycles=0, dma_values=0, stall_cycles=0,
            bottleneck="-", bottleneck_cycles=0))
    return BottleneckTable(total_cycles=total, rows=rows)
