"""Cycle-level metrics registry: the :class:`Telemetry` hub.

The hub is the observability counterpart of :mod:`repro.faults.hooks`:
every instrumentable component (simulator, FIFOs, SRAM banks, DMA,
DDR4, Avalon bus, driver) exposes an ``obs`` slot that defaults to
``None`` and is consulted behind a single ``is None`` guard.  With no
hub attached the clean path is bit- and cycle-identical to an
un-instrumented build (asserted by ``benchmarks/bench_obs_overhead.py``);
with a hub attached the hooks are *observation only* — they never touch
scheduler state, so cycle counts are still identical.

What the hub collects on top of the components' own lifetime stats
(``KernelStats``, ``FifoStats``, ``SramStats``, ``DmaStats``):

* **stall attribution** — each stall cycle of each kernel is charged to
  the blocking resource (which FIFO and whether it was full or empty,
  or which barrier), the raw material of the backpressure profiler;
* **FIFO occupancy** — an event-driven occupancy/time integral and
  histogram per queue (mean depth, time at each level);
* **SRAM port conflicts** — same-cycle double uses of a bank's read
  (port A) or write (port B) port, where the behavioural model is more
  permissive than the exclusive-port RTL of Section IV-A;
* **per-layer deltas** — the driver brackets each layer with
  ``begin_layer``/``end_layer``; the hub snapshots every counter and
  stores the difference as a :class:`LayerMetrics`.

``Telemetry(timeline=True)`` additionally records kernel-state spans
and counter tracks for the Chrome/Perfetto exporter in
:mod:`repro.obs.timeline`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

#: Stall kinds used in attribution keys.
STALL_KINDS = ("empty", "full", "barrier")

#: Aggregate kernel-cycle categories, in presentation order.
KERNEL_CATEGORIES = ("active", "stall_empty", "stall_full", "barrier",
                     "sleep")


class _OccupancyTracker:
    """Event-driven occupancy/time integral for one FIFO."""

    __slots__ = ("occupancy", "last_cycle", "integral", "hist",
                 "max_occupancy")

    def __init__(self, start_cycle: int, occupancy: int = 0):
        self.occupancy = occupancy
        self.last_cycle = start_cycle
        self.integral = 0
        self.hist: dict[int, int] = {}
        self.max_occupancy = occupancy

    def observe(self, now: int, new_occupancy: int) -> None:
        if now > self.last_cycle:
            span = now - self.last_cycle
            self.integral += self.occupancy * span
            self.hist[self.occupancy] = \
                self.hist.get(self.occupancy, 0) + span
            self.last_cycle = now
        self.occupancy = new_occupancy
        if new_occupancy > self.max_occupancy:
            self.max_occupancy = new_occupancy

    def close(self, now: int) -> None:
        self.observe(now, self.occupancy)


class _PortTracker:
    """Same-cycle conflict detection for one bank's two ports."""

    __slots__ = ("last_a", "last_b", "a_conflicts", "b_conflicts")

    def __init__(self):
        self.last_a = -1
        self.last_b = -1
        self.a_conflicts = 0
        self.b_conflicts = 0

    def touch_a(self, now: int) -> None:
        if self.last_a == now:
            self.a_conflicts += 1
        else:
            self.last_a = now

    def touch_b(self, now: int) -> None:
        if self.last_b == now:
            self.b_conflicts += 1
        else:
            self.last_b = now


# -- report records --------------------------------------------------------------


@dataclass(frozen=True)
class KernelMetrics:
    """Cycle breakdown of one kernel over the observed window."""

    name: str
    active: int
    stall_empty: int
    stall_full: int
    barrier: int
    sleep: int
    items_read: int
    items_written: int
    reported_ii: int

    @property
    def observed(self) -> int:
        return (self.active + self.stall_empty + self.stall_full
                + self.barrier + self.sleep)

    @property
    def busy_fraction(self) -> float:
        return self.active / self.observed if self.observed else 0.0

    @property
    def items(self) -> int:
        return max(self.items_read, self.items_written)

    @property
    def achieved_ii(self) -> float:
        """Observed cycles per item moved (vs the reported/target II)."""
        return self.observed / self.items if self.items else 0.0


@dataclass(frozen=True)
class FifoMetrics:
    """Occupancy and backpressure profile of one FIFO."""

    name: str
    depth: int
    pushes: int
    pops: int
    max_occupancy: int
    mean_occupancy: float
    stall_full_cycles: int
    stall_empty_cycles: int
    occupancy_hist: dict[int, int]


@dataclass(frozen=True)
class BankMetrics:
    """Traffic and port-conflict profile of one SRAM bank."""

    name: str
    tile_reads: int
    tile_writes: int
    stream_values_read: int
    dma_values_read: int
    dma_values_written: int
    port_a_conflicts: int
    port_b_conflicts: int


@dataclass(frozen=True)
class DmaMetrics:
    """DMA engine utilization over the observed window."""

    transfers: int
    values_moved: int
    busy_cycles: int
    failed: int
    retried: int
    total_cycles: int

    @property
    def utilization(self) -> float:
        return (self.busy_cycles / self.total_cycles
                if self.total_cycles else 0.0)


@dataclass(frozen=True)
class DramMetrics:
    values_read: int
    values_written: int


@dataclass(frozen=True)
class LayerMetrics:
    """Counter deltas over one driver layer (begin/end bracket)."""

    name: str
    kind: str
    start_cycle: int
    end_cycle: int
    kernel_cycles: dict[str, int]       # category -> cycles (all kernels)
    stall_by_resource: dict[str, int]   # "fifo x (full)" -> cycles
    dma_values: int
    dma_busy_cycles: int
    dma_transfers: int
    dram_values_read: int
    dram_values_written: int
    bank_conflicts: int

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle

    @property
    def top_bottleneck(self) -> tuple[str, int]:
        """(resource label, stall cycles) of the heaviest blocker."""
        if not self.stall_by_resource:
            return ("-", 0)
        resource = max(self.stall_by_resource,
                       key=lambda r: self.stall_by_resource[r])
        return resource, self.stall_by_resource[resource]


@dataclass
class MetricsReport:
    """Everything the hub measured, renderable as text and JSON."""

    total_cycles: int
    kernels: list[KernelMetrics] = field(default_factory=list)
    fifos: list[FifoMetrics] = field(default_factory=list)
    banks: list[BankMetrics] = field(default_factory=list)
    dma: DmaMetrics | None = None
    dram: DramMetrics | None = None
    bus: dict[str, tuple[int, int]] = field(default_factory=dict)
    layers: list[LayerMetrics] = field(default_factory=list)
    stall_attribution: dict[tuple[str, str, str], int] = \
        field(default_factory=dict)

    # -- aggregation ---------------------------------------------------------

    def kernel_totals(self) -> dict[str, int]:
        """Kernel-cycles summed over all kernels, by category."""
        totals = {category: 0 for category in KERNEL_CATEGORIES}
        for k in self.kernels:
            totals["active"] += k.active
            totals["stall_empty"] += k.stall_empty
            totals["stall_full"] += k.stall_full
            totals["barrier"] += k.barrier
            totals["sleep"] += k.sleep
        return totals

    def stalls_by_resource(self) -> dict[str, int]:
        """Stall cycles aggregated over kernels, per blocking resource."""
        rolled: dict[str, int] = {}
        for (_, resource, kind), cycles in self.stall_attribution.items():
            label = (f"{resource} (barrier)" if kind == "barrier"
                     else f"{resource} ({kind})")
            rolled[label] = rolled.get(label, 0) + cycles
        return rolled

    # -- rendering -----------------------------------------------------------

    def format(self, max_rows: int = 12) -> str:
        lines = ["telemetry report",
                 "================",
                 f"observed cycles : {self.total_cycles}"]
        totals = self.kernel_totals()
        observed = sum(totals.values())
        if observed:
            parts = "  ".join(f"{c} {totals[c]}"
                              for c in KERNEL_CATEGORIES)
            lines.append(f"kernel-cycles   : {observed} ({parts})")
        if self.dma is not None:
            lines.append(
                f"dma             : {self.dma.transfers} transfers, "
                f"{self.dma.values_moved} values, busy "
                f"{self.dma.busy_cycles} cycles "
                f"({100 * self.dma.utilization:.1f}% of fabric)")
        if self.dram is not None:
            lines.append(f"ddr4            : {self.dram.values_read} read, "
                         f"{self.dram.values_written} written (values)")
        if self.bus:
            traffic = ", ".join(f"{slave} {r}r/{w}w"
                                for slave, (r, w) in sorted(self.bus.items()))
            lines.append(f"bus             : {traffic}")
        lines.append("")
        lines.append(f"{'kernel':<24}{'active':>8}{'empty':>7}{'full':>7}"
                     f"{'barr':>6}{'sleep':>7}{'busy':>6}{'II':>6}")
        shown = sorted(self.kernels, key=lambda k: -k.observed)[:max_rows]
        for k in shown:
            ii = f"{k.achieved_ii:.1f}" if k.items else "-"
            lines.append(f"{k.name:<24}{k.active:>8}{k.stall_empty:>7}"
                         f"{k.stall_full:>7}{k.barrier:>6}{k.sleep:>7}"
                         f"{100 * k.busy_fraction:>5.0f}%{ii:>6}")
        if len(self.kernels) > len(shown):
            lines.append(f"... {len(self.kernels) - len(shown)} more kernels")
        lines.append("")
        lines.append(f"{'fifo':<24}{'push':>7}{'pop':>7}{'max':>5}"
                     f"{'mean':>7}{'full':>7}{'empty':>7}")
        busiest = sorted(
            self.fifos,
            key=lambda f: -(f.stall_full_cycles + f.stall_empty_cycles
                            + f.pushes))[:max_rows]
        for f in busiest:
            lines.append(f"{f.name:<24}{f.pushes:>7}{f.pops:>7}"
                         f"{f.max_occupancy:>5}{f.mean_occupancy:>7.2f}"
                         f"{f.stall_full_cycles:>7}{f.stall_empty_cycles:>7}")
        if len(self.fifos) > len(busiest):
            lines.append(f"... {len(self.fifos) - len(busiest)} more fifos")
        if self.banks:
            lines.append("")
            lines.append(f"{'bank':<14}{'tile rd':>9}{'tile wr':>9}"
                         f"{'stream':>9}{'dma rd':>9}{'dma wr':>9}"
                         f"{'cfl A':>7}{'cfl B':>7}")
            for b in self.banks:
                lines.append(f"{b.name:<14}{b.tile_reads:>9}"
                             f"{b.tile_writes:>9}{b.stream_values_read:>9}"
                             f"{b.dma_values_read:>9}"
                             f"{b.dma_values_written:>9}"
                             f"{b.port_a_conflicts:>7}"
                             f"{b.port_b_conflicts:>7}")
        stalls = self.stalls_by_resource()
        if stalls:
            lines.append("")
            lines.append("stall attribution (cycles blocked, by resource):")
            for resource in sorted(stalls, key=lambda r: -stalls[r])[:max_rows]:
                lines.append(f"  {resource:<38}{stalls[resource]:>9}")
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        """Plain-data rendering (stable keys, JSON-serializable)."""
        return {
            "total_cycles": self.total_cycles,
            "kernel_totals": self.kernel_totals(),
            "kernels": [{
                "name": k.name, "active": k.active,
                "stall_empty": k.stall_empty, "stall_full": k.stall_full,
                "barrier": k.barrier, "sleep": k.sleep,
                "items_read": k.items_read,
                "items_written": k.items_written,
                "busy_fraction": k.busy_fraction,
                "reported_ii": k.reported_ii,
                "achieved_ii": k.achieved_ii,
            } for k in self.kernels],
            "fifos": [{
                "name": f.name, "depth": f.depth, "pushes": f.pushes,
                "pops": f.pops, "max_occupancy": f.max_occupancy,
                "mean_occupancy": f.mean_occupancy,
                "stall_full_cycles": f.stall_full_cycles,
                "stall_empty_cycles": f.stall_empty_cycles,
                "occupancy_hist": {str(k): v
                                   for k, v in sorted(f.occupancy_hist.items())},
            } for f in self.fifos],
            "banks": [{
                "name": b.name, "tile_reads": b.tile_reads,
                "tile_writes": b.tile_writes,
                "stream_values_read": b.stream_values_read,
                "dma_values_read": b.dma_values_read,
                "dma_values_written": b.dma_values_written,
                "port_a_conflicts": b.port_a_conflicts,
                "port_b_conflicts": b.port_b_conflicts,
            } for b in self.banks],
            "dma": None if self.dma is None else {
                "transfers": self.dma.transfers,
                "values_moved": self.dma.values_moved,
                "busy_cycles": self.dma.busy_cycles,
                "failed": self.dma.failed, "retried": self.dma.retried,
                "utilization": self.dma.utilization,
            },
            "dram": None if self.dram is None else {
                "values_read": self.dram.values_read,
                "values_written": self.dram.values_written,
            },
            "bus": {slave: {"reads": r, "writes": w}
                    for slave, (r, w) in sorted(self.bus.items())},
            "layers": [{
                "name": layer.name, "kind": layer.kind,
                "start_cycle": layer.start_cycle,
                "end_cycle": layer.end_cycle, "cycles": layer.cycles,
                "kernel_cycles": dict(layer.kernel_cycles),
                "stall_by_resource": dict(sorted(
                    layer.stall_by_resource.items(),
                    key=lambda kv: -kv[1])),
                "dma_values": layer.dma_values,
                "dma_busy_cycles": layer.dma_busy_cycles,
                "dma_transfers": layer.dma_transfers,
                "dram_values_read": layer.dram_values_read,
                "dram_values_written": layer.dram_values_written,
                "bank_conflicts": layer.bank_conflicts,
            } for layer in self.layers],
            "stall_attribution": [{
                "kernel": kernel, "resource": resource, "kind": kind,
                "cycles": cycles,
            } for (kernel, resource, kind), cycles
                in sorted(self.stall_attribution.items(),
                          key=lambda kv: -kv[1])],
        }

    def json(self, indent: int = 2) -> str:
        return json.dumps(self.to_json(), indent=indent)


# -- the hub ---------------------------------------------------------------------


class Telemetry:
    """Metrics hub attachable to a bare simulator or a whole SoC.

    Parameters
    ----------
    timeline:
        When true, additionally record kernel-state spans and counter
        samples for the Chrome/Perfetto exporter
        (:func:`repro.obs.timeline.chrome_trace`).  Timeline recording
        samples every kernel each cycle — cheap in counters, but
        memory grows with state churn; leave off for pure metrics.
    counter_interval:
        Cycles between counter-track samples in timeline mode.
    """

    def __init__(self, timeline: bool = False, counter_interval: int = 32):
        self.sim = None
        self.soc = None
        self.stall_attribution: dict[tuple[str, str, str], int] = {}
        self._occ: dict[str, _OccupancyTracker] = {}
        self._ports: dict[str, _PortTracker] = {}
        self._banks: list = []
        self._dma = None
        self._dram = None
        self._bus_traffic: dict[str, list[int]] = {}
        self._layers: list[LayerMetrics] = []
        self._layer_stack: list[tuple[str, str, dict]] = []
        self.timeline = None
        if timeline:
            from repro.obs.timeline import TimelineRecorder
            self.timeline = TimelineRecorder(counter_interval)

    # -- attachment ----------------------------------------------------------

    def attach_sim(self, sim) -> "Telemetry":
        """Instrument a bare :class:`~repro.hls.sim.Simulator`.

        Attachment is ordering-insensitive: assigning ``sim.obs``
        propagates the hub to every already-registered FIFO (announcing
        each through :meth:`on_fifo_registered`), and FIFOs created
        later inherit the hub in ``Simulator.fifo()``.
        """
        self.sim = sim
        sim.obs = self
        return self

    def attach(self, soc) -> "Telemetry":
        """Instrument a full :class:`~repro.soc.driver.SocSystem`."""
        self.soc = soc
        self.attach_sim(soc.sim)
        soc.obs = self
        self._banks = list(soc.accel.banks)
        for bank in self._banks:
            bank.obs = self
            self._ports[bank.name] = _PortTracker()
        self._dma = soc.dma
        soc.dma.obs = self
        self._dram = soc.dram
        soc.dram.obs = self
        soc.bus.subscribe(self._on_bus)
        return self

    def attach_banks(self, banks) -> "Telemetry":
        """Instrument SRAM banks of a bare accelerator instance."""
        self._banks = list(banks)
        for bank in self._banks:
            bank.obs = self
            self._ports[bank.name] = _PortTracker()
        return self

    # -- site callbacks (observation only — never touch sim state) -----------

    def on_cycle(self, sim) -> None:
        if self.timeline is not None:
            self.timeline.on_cycle(sim)

    def on_warp(self, sim, start: int, end: int) -> None:
        """Bulk ``on_cycle`` over a dead window ``[start, end)``.

        Called by the scheduler's cycle-warp fast path instead of one
        ``on_cycle`` per skipped cycle.  Kernel states and FIFO
        occupancies are constant over a dead window, so the recorder
        can reproduce the exact per-cycle sample stream in one call.
        """
        if self.timeline is not None:
            self.timeline.on_warp(sim, start, end)

    def on_burst(self, sim, start: int, end: int, flows) -> None:
        """Bulk push/pop accounting for a burst window ``[start, end)``.

        Called by the burst-mode fast path instead of one
        ``on_push``/``on_pop`` pair per queue per cycle.  ``flows`` is a
        sequence of ``(fifo, peak)`` pairs: each queue moved exactly one
        value per cycle (end-of-cycle occupancy constant at 1), touching
        a mid-cycle ``peak`` occupancy of 2 when its producer pushes
        before its consumer pops within the cycle, else 1.  The
        per-cycle path would credit one span at the (constant) standing
        occupancy per cycle; one bulk span reproduces the integral,
        histogram and max exactly.
        """
        last = end - 1
        for fifo, peak in flows:
            tracker = self._occ.get(fifo.name)
            if tracker is None:
                tracker = self._occ[fifo.name] = \
                    _OccupancyTracker(start, fifo.occupancy)
            span = last - tracker.last_cycle
            if span > 0:
                tracker.integral += tracker.occupancy * span
                tracker.hist[tracker.occupancy] = \
                    tracker.hist.get(tracker.occupancy, 0) + span
                tracker.last_cycle = last
            tracker.occupancy = fifo.occupancy
            if peak > tracker.max_occupancy:
                tracker.max_occupancy = peak
        if self.timeline is not None:
            self.timeline.on_burst(sim, start, end)

    def on_burst_window(self, sim, start: int, end: int, runs=None,
                        occ_at=None) -> None:
        """Bulk ``on_cycle`` for a replayed phase window ``[start, end)``.

        Used by burst replayers whose queue traffic goes through the
        real ``push``/``pop`` paths with the clock staged — occupancy
        trackers and stall attribution are already exact, so only the
        timeline's per-cycle sampling needs replaying.  ``runs`` lists
        ``(kernel, ((state, start_cycle), ...))`` for participants whose
        end-of-cycle state varies inside the window; ``occ_at(cycle)``
        returns occupancy overrides for queues whose end-of-cycle
        occupancy differs from their current (post-window) value.
        """
        if self.timeline is not None:
            self.timeline.on_burst_window(sim, start, end, runs=runs,
                                          occ_at=occ_at)

    def on_stall(self, kernel, resource: str, kind: str, now: int) -> None:
        key = (kernel.name, resource, kind)
        self.stall_attribution[key] = self.stall_attribution.get(key, 0) + 1

    def on_stall_span(self, kernel, resource: str, kind: str,
                      start: int, cycles: int) -> None:
        """Bulk ``on_stall``: ``cycles`` consecutive stalls from ``start``."""
        key = (kernel.name, resource, kind)
        self.stall_attribution[key] = \
            self.stall_attribution.get(key, 0) + cycles

    def on_fifo_registered(self, fifo, now: int) -> None:
        """A FIFO joined the instrumented simulator (any time, any order)."""
        if fifo.name not in self._occ:
            self._occ[fifo.name] = _OccupancyTracker(now, fifo.occupancy)

    def on_push(self, fifo, now: int) -> None:
        tracker = self._occ.get(fifo.name)
        if tracker is None:
            tracker = self._occ[fifo.name] = _OccupancyTracker(now)
        tracker.observe(now, fifo.occupancy)

    on_pop = on_push

    def on_tile_read(self, bank) -> None:
        self._port(bank).touch_a(self._now())

    def on_stream_read(self, bank, count: int) -> None:
        self._port(bank).touch_a(self._now())

    def on_bank_dma_read(self, bank, count: int) -> None:
        self._port(bank).touch_a(self._now())

    def on_tile_write(self, bank) -> None:
        self._port(bank).touch_b(self._now())

    def on_bank_dma_write(self, bank, count: int) -> None:
        self._port(bank).touch_b(self._now())

    def _now(self) -> int:
        return self.sim.now if self.sim is not None else 0

    def on_dma(self, dma, descriptor, start: int, cycles: int,
               ok: bool) -> None:
        if self.timeline is not None:
            self.timeline.add_dma_span(descriptor, start, cycles, ok)

    def on_dram(self, dram, kind: str, count: int) -> None:
        if self.timeline is not None:
            self.timeline.note_dram(self.sim.now if self.sim else 0,
                                    kind, count)

    def _on_bus(self, op: str, slave: str, addr: int, value: int) -> None:
        traffic = self._bus_traffic.setdefault(slave, [0, 0])
        traffic[0 if op == "read" else 1] += 1

    def _port(self, bank) -> _PortTracker:
        tracker = self._ports.get(bank.name)
        if tracker is None:
            tracker = self._ports[bank.name] = _PortTracker()
        return tracker

    # -- per-layer bracketing (driven by the SoC driver) ----------------------

    def begin_layer(self, name: str, kind: str = "layer") -> None:
        self._layer_stack.append((name, kind, self._snapshot()))
        if self.timeline is not None:
            self.timeline.begin_layer(name, self.sim.now, kind)

    def end_layer(self) -> None:
        name, kind, before = self._layer_stack.pop()
        after = self._snapshot()
        self._layers.append(self._diff_layer(name, kind, before, after))
        if self.timeline is not None:
            self.timeline.end_layer(name, self.sim.now)

    def _snapshot(self) -> dict:
        sim = self.sim
        snap: dict = {"cycle": sim.now if sim else 0}
        if sim is not None:
            totals = {category: 0 for category in KERNEL_CATEGORIES}
            active_by_kernel = {}
            for k in sim.kernels:
                totals["active"] += k.stats.active_cycles
                totals["stall_empty"] += k.stats.stall_empty_cycles
                totals["stall_full"] += k.stats.stall_full_cycles
                totals["barrier"] += k.stats.barrier_cycles
                totals["sleep"] += k.stats.sleep_cycles
                active_by_kernel[k.name] = k.stats.active_cycles
            snap["kernel_cycles"] = totals
            snap["active_by_kernel"] = active_by_kernel
        snap["attribution"] = dict(self.stall_attribution)
        if self._dma is not None:
            stats = self._dma.stats
            snap["dma"] = (stats.transfers, stats.values_moved,
                           stats.busy_cycles)
        if self._dram is not None:
            snap["dram"] = (self._dram.stats.values_read,
                            self._dram.stats.values_written)
        snap["conflicts"] = sum(p.a_conflicts + p.b_conflicts
                                for p in self._ports.values())
        return snap

    def _diff_layer(self, name: str, kind: str, before: dict,
                    after: dict) -> LayerMetrics:
        kernel_cycles = {
            category: (after.get("kernel_cycles", {}).get(category, 0)
                       - before.get("kernel_cycles", {}).get(category, 0))
            for category in KERNEL_CATEGORIES}
        # Stalls of kernels that did no work in the layer (e.g. the
        # pad/pool pipeline idling through a convolution) are not
        # bottlenecks — a permanently-starved consumer would otherwise
        # always top the table.  Only working kernels' stalls count.
        active_before = before.get("active_by_kernel", {})
        active_after = after.get("active_by_kernel", {})
        stalls: dict[str, int] = {}
        for key, cycles in after["attribution"].items():
            delta = cycles - before["attribution"].get(key, 0)
            if delta:
                kernel_name, resource, stall_kind = key
                if (active_after.get(kernel_name, 0)
                        <= active_before.get(kernel_name, 0)):
                    continue
                label = f"{resource} ({stall_kind})"
                stalls[label] = stalls.get(label, 0) + delta
        dma_before = before.get("dma", (0, 0, 0))
        dma_after = after.get("dma", (0, 0, 0))
        dram_before = before.get("dram", (0, 0))
        dram_after = after.get("dram", (0, 0))
        return LayerMetrics(
            name=name, kind=kind,
            start_cycle=before["cycle"], end_cycle=after["cycle"],
            kernel_cycles=kernel_cycles,
            stall_by_resource=stalls,
            dma_values=dma_after[1] - dma_before[1],
            dma_busy_cycles=dma_after[2] - dma_before[2],
            dma_transfers=dma_after[0] - dma_before[0],
            dram_values_read=dram_after[0] - dram_before[0],
            dram_values_written=dram_after[1] - dram_before[1],
            bank_conflicts=after["conflicts"] - before["conflicts"],
        )

    # -- report assembly ------------------------------------------------------

    @property
    def layers(self) -> list[LayerMetrics]:
        return list(self._layers)

    def report(self) -> MetricsReport:
        """Assemble the current counters into a :class:`MetricsReport`."""
        sim = self.sim
        now = sim.now if sim else 0
        kernels = []
        if sim is not None:
            for k in sim.kernels:
                kernels.append(KernelMetrics(
                    name=k.name,
                    active=k.stats.active_cycles,
                    stall_empty=k.stats.stall_empty_cycles,
                    stall_full=k.stats.stall_full_cycles,
                    barrier=k.stats.barrier_cycles,
                    sleep=k.stats.sleep_cycles,
                    items_read=k.stats.items_read,
                    items_written=k.stats.items_written,
                    reported_ii=k.ii))
        fifos = []
        if sim is not None:
            for f in sim.fifos:
                tracker = self._occ.get(f.name)
                if tracker is not None:
                    tracker.close(now)
                span = now if now else 1
                mean = (tracker.integral / span) if tracker else 0.0
                hist = dict(tracker.hist) if tracker else {}
                fifos.append(FifoMetrics(
                    name=f.name, depth=f.depth,
                    pushes=f.stats.pushes, pops=f.stats.pops,
                    max_occupancy=f.stats.max_occupancy,
                    mean_occupancy=mean,
                    stall_full_cycles=f.stats.stall_full_cycles,
                    stall_empty_cycles=f.stats.stall_empty_cycles,
                    occupancy_hist=hist))
        banks = []
        for bank in self._banks:
            ports = self._ports.get(bank.name) or _PortTracker()
            banks.append(BankMetrics(
                name=bank.name,
                tile_reads=bank.stats.tile_reads,
                tile_writes=bank.stats.tile_writes,
                stream_values_read=bank.stats.stream_values_read,
                dma_values_read=bank.stats.dma_values_read,
                dma_values_written=bank.stats.dma_values_written,
                port_a_conflicts=ports.a_conflicts,
                port_b_conflicts=ports.b_conflicts))
        dma = None
        if self._dma is not None:
            stats = self._dma.stats
            dma = DmaMetrics(transfers=stats.transfers,
                             values_moved=stats.values_moved,
                             busy_cycles=stats.busy_cycles,
                             failed=stats.failed, retried=stats.retried,
                             total_cycles=now)
        dram = None
        if self._dram is not None:
            dram = DramMetrics(values_read=self._dram.stats.values_read,
                               values_written=self._dram.stats.values_written)
        return MetricsReport(
            total_cycles=now,
            kernels=kernels, fifos=fifos, banks=banks,
            dma=dma, dram=dram,
            bus={slave: (r, w)
                 for slave, (r, w) in self._bus_traffic.items()},
            layers=list(self._layers),
            stall_attribution=dict(self.stall_attribution))
