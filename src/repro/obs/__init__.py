"""Unified observability: metrics, backpressure profiling, timelines.

Three pillars, all fed by one :class:`~repro.obs.metrics.Telemetry` hub
attached through the same zero-overhead-when-disabled ``obs`` slots
that :mod:`repro.faults` uses for ``fault_hook``:

* :mod:`repro.obs.metrics` — cycle-level counters and histograms with
  a text/JSON :class:`~repro.obs.metrics.MetricsReport`;
* :mod:`repro.obs.profiler` — per-layer stall attribution rolled into a
  bottleneck table whose rows sum exactly to the simulator cycle count;
* :mod:`repro.obs.timeline` — Chrome ``trace_event`` (Perfetto) export
  unifying HLS and SoC events on one clock.

See ``docs/OBSERVABILITY.md`` for a walkthrough.
"""

from repro.obs.cache import (CacheStats, KeyedCache, cache_stats,
                             reset_caches)
from repro.obs.events import TraceBuffer, TraceEvent
from repro.obs.flight import (COMPONENTS, CriticalPath, FlightRecorder,
                              interval_union)
from repro.obs.hostprof import HostProfiler, kernel_family
from repro.obs.metrics import (BankMetrics, DmaMetrics, DramMetrics,
                               FifoMetrics, KernelMetrics, LayerMetrics,
                               MetricsReport, Telemetry)
from repro.obs.profiler import (RESIDUAL_ROW, BottleneckRow,
                                BottleneckTable, bottleneck_table)
from repro.obs.series import TimeSeries
from repro.obs.serving import ServingTimeline
from repro.obs.timeline import TimelineRecorder, chrome_trace
from repro.obs.trackreg import (PID_FLIGHT, PID_KERNELS, PID_MEMORY,
                                PID_SERVING, PID_SYSTEM, merge_traces)
from repro.obs.workloads import (ProfileResult, ProfileWorkload,
                                 run_profile, scaled_workload,
                                 select_workloads)

__all__ = [
    "CacheStats", "KeyedCache", "cache_stats", "reset_caches",
    "TraceBuffer", "TraceEvent",
    "COMPONENTS", "CriticalPath", "FlightRecorder", "interval_union",
    "HostProfiler", "kernel_family",
    "BankMetrics", "DmaMetrics", "DramMetrics", "FifoMetrics",
    "KernelMetrics", "LayerMetrics", "MetricsReport", "Telemetry",
    "RESIDUAL_ROW", "BottleneckRow", "BottleneckTable",
    "bottleneck_table",
    "TimeSeries",
    "PID_KERNELS", "PID_MEMORY", "PID_SYSTEM", "PID_SERVING",
    "PID_FLIGHT", "merge_traces",
    "ServingTimeline",
    "TimelineRecorder", "chrome_trace",
    "ProfileResult", "ProfileWorkload", "run_profile",
    "scaled_workload", "select_workloads",
]
