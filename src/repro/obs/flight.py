"""Request-scoped flight recorder: span trees + exact critical paths.

Every request that enters the serving scheduler with
``ServeConfig(flight=True)`` accumulates a deterministic span tree —
admission-queue wait, batcher residency, dispatch attempts (including
hedged legs, half-open probes and drain-and-requeue detours), back-off
sleeps, and the per-attempt progress splits the exact-Fraction
contention model produces.  On top of the raw spans the recorder
computes an **exact critical-path decomposition**: for every completed
request

    ``queue + batch + contention + compute + resilience + other``

sums to its end-to-end latency *as Fractions* — the serving-layer
mirror of the PR 2 invariant that the bottleneck table sums exactly to
``sim.now``.  The components:

* **queue** — arrival to batch close (admission + batcher residency);
* **batch** — batch close to the start of the *winning* attempt, minus
  any time already attributed to resilience (waiting for an idle
  healthy instance, dispatch gaps after a requeue);
* **compute** — ideal uncontended service consumed by the winning
  attempt (exactly ``profile.batch_cycles(size)``);
* **contention** — the winning attempt's DDR4 processor-sharing stall
  (time the memory phase stretched because other instances held the
  shared controller);
* **resilience** — everything the fault machinery cost: the merged
  interval union of losing/faulted/killed/cancelled attempt time
  before the winner started, back-off sleeps, plus the winning
  attempt's derate stall under scripted slow-replica disruptions;
* **other** — the residual, **identically zero by construction**
  (asserted by the property suite; kept in the schema so a future
  accounting bug is loud, not silent).

The decomposition is derived, not sampled: each ``_Job.advance(dt)``
splits ``dt`` exactly into ideal progress, contention stall and derate
stall (``dt = ideal + dt·(1-mem_rate) + dt·mem_rate·(1-1/derate)`` in
the memory phase), so the components are exact by the same arithmetic
that advances the clock.  Arming the recorder is observation-only:
cycle counts, outputs and the behavioural report are byte-identical
with it attached (``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any

from repro.obs.trackreg import PID_FLIGHT, process_meta

#: Rounding for the attribution JSON (matches the serve report).
JSON_FLOAT_DECIMALS = 6

#: Canonical component order of the decomposition.
COMPONENTS = ("queue", "batch", "contention", "compute", "resilience",
              "other")


def _round(value) -> float:
    return round(float(value), JSON_FLOAT_DECIMALS)


def interval_union(intervals) -> Fraction:
    """Total length of the union of ``[start, end)`` Fraction intervals.

    Hedged legs overlap their primary, so resilience time before the
    winning attempt must be merged, not summed — double counting would
    break the exact-sum invariant.
    """
    spans = sorted((s, e) for s, e in intervals if e > s)
    total = Fraction(0)
    cursor = None
    for start, end in spans:
        if cursor is None or start > cursor:
            total += end - start
            cursor = end
        elif end > cursor:
            total += end - cursor
            cursor = end
    return total


@dataclass(frozen=True)
class CriticalPath:
    """Exact latency decomposition of one completed request."""

    rid: int
    bid: int
    instance: int            # instance whose attempt won
    latency: Fraction
    queue: Fraction
    batch: Fraction
    contention: Fraction
    compute: Fraction
    resilience: Fraction
    other: Fraction

    def components(self) -> dict[str, Fraction]:
        return {name: getattr(self, name) for name in COMPONENTS}

    @property
    def exact(self) -> bool:
        """Does the decomposition sum exactly to the latency?"""
        return sum(self.components().values()) == self.latency


class _Attempt:
    """One dispatch leg of one batch on one instance."""

    __slots__ = ("instance", "start", "end", "outcome", "hedge", "probe",
                 "number", "ideal", "contention", "derate")

    def __init__(self, instance: int, start: Fraction, number: int,
                 hedge: bool, probe: bool):
        self.instance = instance
        self.start = start
        self.end: Fraction | None = None
        self.outcome: str | None = None   # complete/fault/cancelled/killed
        self.hedge = hedge
        self.probe = probe
        self.number = number
        self.ideal = Fraction(0)
        self.contention = Fraction(0)
        self.derate = Fraction(0)


class _BatchFlight:
    """Everything the recorder knows about one batch's life."""

    __slots__ = ("bid", "size", "rids", "close", "reason", "attempts",
                 "backoffs", "failed_at", "deadline")

    def __init__(self, bid: int, size: int, rids: tuple[int, ...],
                 close: Fraction, reason: str, deadline):
        self.bid = bid
        self.size = size
        self.rids = rids
        self.close = close
        self.reason = reason
        self.attempts: list[_Attempt] = []
        self.backoffs: list[tuple[Fraction, Fraction]] = []
        self.failed_at: Fraction | None = None
        self.deadline = deadline


class FlightRecorder:
    """Observation-only recorder the serve scheduler feeds.

    The scheduler calls the ``on_*`` hooks at the exact instants the
    events happen (all timestamps are the scheduler's Fraction clock);
    after the run :meth:`critical_paths` derives the per-request
    decomposition and :meth:`attribution` rolls it up fleet-wide.
    """

    def __init__(self):
        self.arrivals: dict[int, Fraction] = {}      # rid -> arrival
        self.drops: list[tuple[int, Fraction, str]] = []
        self.batches: dict[int, _BatchFlight] = {}
        self.instants: list[tuple[str, Fraction, int, dict]] = []
        self.breaker_logs: dict[int, list] = {}
        self.makespan: Fraction = Fraction(0)

    # -- hooks (called by the scheduler) ---------------------------------------

    def on_arrival(self, request, now, admitted: bool) -> None:
        self.arrivals[request.rid] = Fraction(request.arrival_cycle)
        if not admitted:
            self.drops.append((request.rid, Fraction(now), "queue_full"))

    def on_drop(self, request, now, reason: str) -> None:
        self.drops.append((request.rid, Fraction(now), reason))

    def on_close(self, batch, now) -> None:
        self.batches[batch.bid] = _BatchFlight(
            bid=batch.bid, size=batch.size,
            rids=tuple(r.rid for r in batch.requests),
            close=Fraction(now),
            reason=getattr(batch, "close_reason", "size"),
            deadline=batch.deadline_cycle)

    def on_dispatch(self, batch, instance: int, now, hedge: bool,
                    probe: bool) -> None:
        log = self.batches[batch.bid]
        log.attempts.append(_Attempt(instance, Fraction(now),
                                     batch.attempts, hedge, probe))

    def on_attempt_end(self, bid: int, instance: int, now, outcome: str,
                       split) -> None:
        log = self.batches[bid]
        for attempt in reversed(log.attempts):
            if attempt.instance == instance and attempt.end is None:
                attempt.end = Fraction(now)
                attempt.outcome = outcome
                if split is not None:
                    attempt.ideal, attempt.contention, attempt.derate = split
                return
        raise KeyError(f"no open attempt for batch {bid} on "
                       f"instance {instance}")

    def on_backoff(self, bid: int, start, end) -> None:
        self.batches[bid].backoffs.append((Fraction(start), Fraction(end)))

    def on_fail(self, batch, now) -> None:
        log = self.batches.get(batch.bid)
        if log is None:
            # A fleet-dead batch may fail while still in the dispatch
            # queue without ever having closed through the batcher's
            # flight hook (defensive; close precedes ready in settle).
            self.on_close(batch, now)
            log = self.batches[batch.bid]
        log.failed_at = Fraction(now)

    def on_instant(self, name: str, now, instance: int,
                   **args: Any) -> None:
        self.instants.append((name, Fraction(now), instance, dict(args)))

    def add_breaker_log(self, instance: int, transitions) -> None:
        self.breaker_logs[instance] = list(transitions)

    def finish(self, now) -> None:
        self.makespan = Fraction(now)

    # -- derivation ------------------------------------------------------------

    def critical_paths(self) -> list[CriticalPath]:
        """Exact per-request decomposition (completed requests only)."""
        paths: list[CriticalPath] = []
        for bid in sorted(self.batches):
            log = self.batches[bid]
            winner = next((a for a in log.attempts
                           if a.outcome == "complete"), None)
            if winner is None:
                continue                # failed / fleet-dead batch
            pre = [(a.start, min(a.end, winner.start))
                   for a in log.attempts
                   if a is not winner and a.end is not None]
            pre.extend((start, min(end, winner.start))
                       for start, end in log.backoffs)
            resilience_pre = interval_union(
                (max(s, log.close), e) for s, e in pre)
            batch_wait = (winner.start - log.close) - resilience_pre
            resilience = resilience_pre + winner.derate
            done = winner.end
            for rid in log.rids:
                arrival = self.arrivals[rid]
                queue = log.close - arrival
                latency = done - arrival
                other = latency - (queue + batch_wait + winner.contention
                                   + winner.ideal + resilience)
                paths.append(CriticalPath(
                    rid=rid, bid=bid, instance=winner.instance,
                    latency=latency, queue=queue, batch=batch_wait,
                    contention=winner.contention, compute=winner.ideal,
                    resilience=resilience, other=other))
        return paths

    def attribution(self, clock_mhz: float | None = None
                    ) -> dict[str, Any]:
        """Fleet-level roll-up of the critical paths (JSON-ready)."""
        paths = self.critical_paths()
        totals = {name: Fraction(0) for name in COMPONENTS}
        per_instance: dict[int, Fraction] = {}
        latency_total = Fraction(0)
        for path in paths:
            latency_total += path.latency
            for name, value in path.components().items():
                totals[name] += value
            per_instance[path.instance] = (
                per_instance.get(path.instance, Fraction(0))
                + path.contention)
        n = len(paths)
        components = {}
        for name in COMPONENTS:
            total = totals[name]
            components[name] = {
                "total_cycles": _round(total),
                "mean_cycles": _round(total / n) if n else 0.0,
                "share": (_round(total / latency_total)
                          if latency_total else 0.0),
            }
        close_reasons: dict[str, int] = {}
        for log in self.batches.values():
            close_reasons[log.reason] = close_reasons.get(log.reason, 0) + 1
        return {
            "schema": "repro.obs/flight/attribution/v1",
            "requests": n,
            "exact_sum": all(path.exact and path.other == 0
                             for path in paths),
            "latency_total_cycles": _round(latency_total),
            "components": components,
            "per_instance_contention_cycles": {
                str(i): _round(per_instance[i])
                for i in sorted(per_instance)},
            "batch_close_reasons": dict(sorted(close_reasons.items())),
        }

    # -- export ----------------------------------------------------------------

    def chrome_trace(self) -> dict[str, Any]:
        """Flight tracks as a Chrome trace document (pid 5).

        One thread per batch carrying nested ``X`` spans — per-member
        queue waits (all ending at the close instant, so they nest),
        every dispatch attempt with its outcome and exact splits in
        ``args``, and back-off sleeps — plus resilience instants and
        circuit-breaker transitions on thread 0, all in the same
        SoC-style ``args`` metadata schema.
        """
        events: list[dict[str, Any]] = [process_meta(PID_FLIGHT)]
        for bid in sorted(self.batches):
            log = self.batches[bid]
            tid = bid + 1
            events.append({"ph": "M", "pid": PID_FLIGHT, "tid": tid,
                           "name": "thread_name",
                           "args": {"name": f"batch{bid}"}})
            for rid in sorted(log.rids,
                              key=lambda r: self.arrivals[r]):
                start = self.arrivals[rid]
                if log.close > start:
                    events.append({
                        "ph": "X", "pid": PID_FLIGHT, "tid": tid,
                        "name": f"queue r{rid}", "cat": "request",
                        "ts": float(start),
                        "dur": float(log.close - start),
                        "args": {"rid": rid, "close_reason": log.reason}})
            for attempt in log.attempts:
                end = attempt.end if attempt.end is not None \
                    else self.makespan
                args = {"outcome": attempt.outcome or "open",
                        "instance": attempt.instance,
                        "attempt": attempt.number,
                        "hedge": attempt.hedge, "probe": attempt.probe}
                if attempt.outcome == "complete":
                    args.update(compute_cycles=_round(attempt.ideal),
                                contention_cycles=_round(
                                    attempt.contention),
                                derate_cycles=_round(attempt.derate))
                cat = "attempt" if attempt.outcome == "complete" \
                    else "attempt,resilience"
                events.append({
                    "ph": "X", "pid": PID_FLIGHT, "tid": tid,
                    "name": f"attempt{attempt.number} "
                            f"acc{attempt.instance}",
                    "cat": cat, "ts": float(attempt.start),
                    "dur": max(float(end - attempt.start), 1e-6),
                    "args": args})
            for start, end in log.backoffs:
                events.append({
                    "ph": "X", "pid": PID_FLIGHT, "tid": tid,
                    "name": "backoff", "cat": "resilience",
                    "ts": float(start),
                    "dur": max(float(end - start), 1e-6),
                    "args": {"bid": bid}})
        for name, now, instance, args in self.instants:
            events.append({
                "ph": "i", "pid": PID_FLIGHT, "tid": 0, "name": name,
                "ts": float(now), "s": "t", "cat": "resilience",
                "args": {"detail": {"instance": instance, **args}}})
        for instance in sorted(self.breaker_logs):
            for state, cycle in self.breaker_logs[instance]:
                events.append({
                    "ph": "i", "pid": PID_FLIGHT, "tid": 0,
                    "name": f"breaker {state}", "ts": float(cycle),
                    "s": "t", "cat": "breaker",
                    "args": {"detail": {"instance": instance}}})
        return {"traceEvents": events, "displayTimeUnit": "ms"}
