"""Graph compiler: arbitrary CNN DAGs to executable accelerator programs.

The pipeline has two passes plus tooling around the artifact:

1. :func:`~repro.compiler.schedule.build_schedule` — topological op
   scheduling with ReLU fusion, tensor naming and execution-site
   assignment (accelerator vs ARM);
2. :func:`~repro.compiler.lower.compile_graph` — liveness-based DDR4
   placement, stripe planning, and static DMA/instruction emission
   into a :class:`~repro.soc.program.Program`;

plus an assembler/disassembler for the encoded instruction stream
(:mod:`repro.compiler.asm`), a replay runner for the cycle-accurate
SoC (:mod:`repro.compiler.runner`), and the golden-model differential
check (:mod:`repro.compiler.golden`).
"""

from repro.compiler.asm import (AsmError, assemble, bytes_to_words,
                                disassemble, disassemble_instruction,
                                parse_instruction, program_words,
                                split_stream, words_to_bytes)
from repro.compiler.golden import GoldenCheck, golden_check
from repro.compiler.lower import (LivenessAllocator, compile_graph,
                                  fm_values)
from repro.compiler.runner import ProgramRun, ProgramRunner
from repro.compiler.schedule import (CompileError, Schedule, ScheduledOp,
                                     build_schedule)

__all__ = [
    "AsmError", "assemble", "bytes_to_words", "disassemble",
    "disassemble_instruction", "parse_instruction", "program_words",
    "split_stream", "words_to_bytes",
    "GoldenCheck", "golden_check",
    "LivenessAllocator", "compile_graph", "fm_values",
    "ProgramRun", "ProgramRunner",
    "CompileError", "Schedule", "ScheduledOp", "build_schedule",
]
