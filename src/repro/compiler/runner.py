"""Program runner: replay a compiled program on the cycle-accurate SoC.

The runner makes *no* scheduling decisions: every DMA descriptor,
every encoded instruction and both hardware counter targets come out
of the compiled :class:`~repro.soc.program.Program` verbatim. Its
only jobs are to stage the inputs (quantized image and packed weight
streams at their planned DDR4 addresses), replay each step, and
execute the ARM-side steps (flatten, FC, merges, standalone ReLU,
softmax) with the same integer arithmetic as
:func:`repro.quant.run_quantized` — which is what makes the
golden-model differential check (:mod:`repro.compiler.golden`)
bit-exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.packing import PackedLayer, serialize_unit_stream
from repro.core.tile import TILE, to_tiles
from repro.nn.graph import Network
from repro.quant.quantize import QuantizedModel
from repro.quant.scale import QuantParams
from repro.quant.signmag import saturate_array, shift_round_array
from repro.soc.driver import FmHandle, LayerRun, SocSystem
from repro.soc.program import Program, ProgramStep


@dataclass
class ProgramRun:
    """Result of one replayed inference."""

    output: np.ndarray            # float network output
    runs: list[LayerRun] = field(default_factory=list)


class ProgramRunner:
    """Executes a compiled program on a (fresh) :class:`SocSystem`.

    The program's done-counter and tile-write targets are absolute, so
    the SoC must start with zeroed counters — the runner builds its
    own system by default and refuses half-used ones implicitly by
    construction.
    """

    def __init__(self, program: Program, network: Network,
                 model: QuantizedModel, soc: SocSystem | None = None):
        self.program = program
        self.network = network
        self.model = model
        if soc is None:
            capacity = max(1 << 12, program.dram_footprint)
            soc = SocSystem(bank_capacity=program.bank_capacity,
                            lanes=program.lanes, dram_capacity=capacity)
        self.soc = soc

    # -- DDR4 staging ------------------------------------------------------------

    def _write_fm(self, addr: int, fm_q: np.ndarray) -> FmHandle:
        """Store a CHW map at ``addr`` in tiled layout (host-side)."""
        fm_q = np.asarray(fm_q, dtype=np.int16)
        channels, height, width = fm_q.shape
        flat = to_tiles(fm_q).reshape(-1)
        self.soc.dram.write(addr, flat)
        self.soc.host.account_reorder(flat.size)
        return FmHandle(addr, channels, height, width)

    def _read_fm(self, handle: FmHandle) -> np.ndarray:
        """Fetch a tiled map back into CHW layout (host-side)."""
        fm = np.zeros((handle.channels, handle.tiles_y * TILE,
                       handle.tiles_x * TILE), dtype=np.int16)
        for c in range(handle.channels):
            flat = self.soc.dram.read(handle.channel_addr(c),
                                      handle.values_per_channel)
            shaped = flat.reshape(handle.tiles_y, handle.tiles_x,
                                  TILE, TILE)
            fm[c] = shaped.transpose(0, 2, 1, 3).reshape(
                handle.tiles_y * TILE, handle.tiles_x * TILE)
        return fm[:, :handle.height, :handle.width]

    def _stage_weights(self) -> None:
        """Write every conv layer's packed unit streams where planned."""
        lanes = self.program.lanes
        for step in self.program.steps:
            if step.kind != "conv":
                continue
            qop = self.model.ops[step.layer]
            packed = PackedLayer.pack(qop.weights_q)
            for unit in range(lanes):
                stream = serialize_unit_stream(packed, unit, lanes=lanes,
                                               group_size=lanes)
                placement = self.program.placement(
                    f"{step.layer}.weights.u{unit}")
                if stream.size > placement.values:
                    raise ValueError(
                        f"{step.layer}: unit {unit} stream is "
                        f"{stream.size} bytes, planned {placement.values}")
                if stream.size:
                    self.soc.dram.write(placement.addr, stream)
                self.soc.host.account_reorder(int(stream.size))

    # -- execution ---------------------------------------------------------------

    def run(self, image: np.ndarray) -> ProgramRun:
        program, model, soc = self.program, self.model, self.soc
        input_name = self.network.layers[0].name
        image_q = model.input_params.quantize(image)
        handles: dict[str, FmHandle] = {
            input_name: self._write_fm(program.placement(input_name).addr,
                                       image_q)}
        self._stage_weights()
        vecs: dict[str, np.ndarray] = {}
        params: dict[str, QuantParams] = {input_name: model.input_params}
        final: np.ndarray | None = None
        runs: list[LayerRun] = []

        def value_of(tensor: str) -> np.ndarray:
            if tensor in vecs:
                return vecs[tensor]
            return self._read_fm(handles[tensor]).astype(np.int64)

        for step in program.steps:
            start = soc.sim.now
            dma_values = 0
            if step.ops:   # accelerator step: replay the micro-schedule
                for stripe in step.ops:
                    soc.run_dma(list(stripe.ifm_dma))
                    if stripe.weight_dma:
                        soc.run_dma(list(stripe.weight_dma))
                    for unit, instr in enumerate(stripe.instructions):
                        soc.issue_instruction(unit, instr)
                    soc.wait_accelerator_done(stripe.done_target)
                    soc.wait_tile_writes(stripe.tile_writes_target)
                    soc.run_dma(list(stripe.ofm_dma))
                    dma_values += sum(
                        d.count for d in stripe.ifm_dma
                        + stripe.weight_dma + stripe.ofm_dma)
                handles[step.output] = FmHandle(
                    program.placement(step.output).addr, *step.out_shape)
                params[step.output] = (
                    model.ops[step.layer].out_params
                    if step.kind == "conv" else params[step.inputs[0]])
            elif step.kind == "arm-flatten":
                vecs[step.output] = value_of(step.inputs[0]).reshape(-1)
                params[step.output] = params[step.inputs[0]]
            elif step.kind == "arm-fc":
                qop = model.ops[step.layer]
                acc = qop.weights_q.astype(np.int64) \
                    @ value_of(step.inputs[0]).reshape(-1) + qop.bias_q
                x = saturate_array(shift_round_array(acc, qop.shift))
                if step.fused_relu:
                    x = np.maximum(x, 0)
                soc.host.account_software(qop.weights_q.size)
                vecs[step.output] = x
                params[step.output] = qop.out_params
            elif step.kind == "arm-relu":
                x = np.maximum(value_of(step.inputs[0]), 0)
                self._store_arm_result(step, x, handles, vecs)
                params[step.output] = params[step.inputs[0]]
            elif step.kind in ("arm-add", "arm-concat"):
                merge = model.merges[step.layer]
                x = merge.apply([value_of(t) for t in step.inputs])
                self._store_arm_result(step, x, handles, vecs)
                params[step.output] = merge.out_params
            elif step.kind == "arm-softmax":
                x = value_of(step.inputs[0])
                scaled = params[step.inputs[0]].dequantize(x).reshape(-1)
                exp = np.exp(scaled - scaled.max())
                final = (exp / exp.sum()).reshape(-1, 1, 1)
                vecs[step.output] = x
                params[step.output] = params[step.inputs[0]]
            else:
                raise ValueError(f"runner cannot replay step {step.kind!r}")
            runs.append(LayerRun(
                name=step.layer, kind=step.kind,
                cycles=soc.sim.now - start, dma_values=dma_values,
                out_shape=step.out_shape))

        if final is not None:
            return ProgramRun(output=final, runs=runs)
        sink = program.steps[-1].output
        if sink in vecs:
            out = params[sink].dequantize(vecs[sink]).reshape(-1, 1, 1)
        else:
            out = params[sink].dequantize(
                self._read_fm(handles[sink]).astype(np.int64))
        return ProgramRun(output=out, runs=runs)

    def _store_arm_result(self, step: ProgramStep, x: np.ndarray,
                          handles: dict[str, FmHandle],
                          vecs: dict[str, np.ndarray]) -> None:
        """Materialize an ARM result: DDR4 map if planned, else vector."""
        try:
            placement = self.program.placement(step.output)
        except KeyError:
            vecs[step.output] = x
            return
        handles[step.output] = self._write_fm(placement.addr,
                                              x.reshape(step.out_shape))
