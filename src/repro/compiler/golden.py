"""Golden-model differential check for compiled programs.

Compiles a network, replays the program on the cycle-accurate SoC,
runs the same image through the integer golden model
(:func:`repro.quant.run_quantized`), and bit-compares the outputs.
The two paths share their quantized parameters but *nothing* of their
execution — one is mailbox words, DMA bursts and RTL-equivalent
kernels, the other pure numpy — so an exact match is strong evidence
the whole compile-and-execute pipeline is faithful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.graph import Network
from repro.quant.quantize import QuantizedModel, run_quantized
from repro.soc.program import CompileConfig, Program

from repro.compiler.lower import compile_graph
from repro.compiler.runner import ProgramRun, ProgramRunner


@dataclass(frozen=True)
class GoldenCheck:
    """Outcome of one compile-execute-compare run."""

    network: str
    matches: bool
    max_abs_diff: float
    program: Program
    run: ProgramRun
    expected: np.ndarray

    def __str__(self) -> str:
        verdict = "BIT-EXACT" if self.matches else \
            f"DIVERGED (max |diff| {self.max_abs_diff:.3e})"
        return f"{self.network}: {verdict}"


def golden_check(network: Network, model: QuantizedModel,
                 image: np.ndarray,
                 config: CompileConfig | None = None,
                 program: Program | None = None) -> GoldenCheck:
    """Compile (unless given), execute, and compare against the golden model."""
    if program is None:
        program = compile_graph(network, model, config)
    run = ProgramRunner(program, network, model).run(image)
    expected = run_quantized(network, model, image)
    got = np.asarray(run.output, dtype=np.float64).reshape(-1)
    want = np.asarray(expected, dtype=np.float64).reshape(-1)
    matches = got.shape == want.shape and bool(np.array_equal(got, want))
    diff = float(np.abs(got - want).max()) if got.shape == want.shape \
        else float("inf")
    return GoldenCheck(network=network.name, matches=matches,
                      max_abs_diff=diff, program=program, run=run,
                      expected=expected)
