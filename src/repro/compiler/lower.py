"""Lowering pass: an op schedule to an executable accelerator program.

The second compiler pass performs, ahead of time, every computation
the live :class:`~repro.soc.driver.InferenceDriver` does on the fly:

* **DDR4 placement with liveness.** Feature maps are reference-counted
  by their consumers and released after the last one, through a
  first-fit free-list allocator — so a residual skip tensor stays
  resident across the whole block that needs it, while the sequential
  spine recycles its regions. Weight streams are persistent.
* **Stripe planning.** Convolutions whose working set exceeds the
  SRAM banks split into OFM tile-row stripes with kernel-derived halo
  re-fetch, using the same arithmetic as the driver (kept honest by
  the differential tests).
* **Instruction and DMA emission.** Every stripe becomes a
  :class:`~repro.soc.program.StripeOp`: concrete DMA descriptors and
  fully-encoded instructions, with done-counter and tile-write
  targets resolved statically — the issue order is fixed at compile
  time, so both hardware counters are pure functions of the program
  position.

The result is a :class:`~repro.soc.program.Program` a runner can
replay on the cycle-accurate SoC without making a single scheduling
decision of its own.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.instructions import (ConvInstruction, Opcode,
                                     PadPoolInstruction)
from repro.core.packing import (PackedLayer, serialize_unit_stream,
                                unit_channels)
from repro.core.tile import TILE, tiles_along
from repro.nn.graph import Network
from repro.nn.tensor import Shape
from repro.perf.cycle_model import (CycleModelParams, conv_layer_cycles,
                                    padpool_layer_cycles)
from repro.quant.quantize import QuantizedModel
from repro.soc.dma import DmaDescriptor, DmaDirection
from repro.soc.program import (CompileConfig, Program, ProgramStep, StripeOp,
                               TensorPlacement)

from repro.compiler.schedule import (CompileError, Schedule, ScheduledOp,
                                     build_schedule)


def fm_values(shape: Shape, tile: int = TILE) -> int:
    """DDR4 values of a CHW map in tiled layout (padded to full tiles)."""
    return (shape.c * tiles_along(shape.h, tile) * tiles_along(shape.w, tile)
            * tile * tile)


class LivenessAllocator:
    """First-fit DDR4 allocator with region reuse.

    ``free`` returns a region to a sorted, coalesced free list; a later
    ``alloc`` takes the first hole that fits (splitting it) before
    growing the high-water mark. Placements are recorded for every
    tensor ever resident, so ``Program.dram_footprint`` (max end
    address) reports the true peak.
    """

    def __init__(self):
        self.top = 0
        self._free: list[tuple[int, int]] = []   # (addr, size), sorted
        self.placements: list[TensorPlacement] = []
        self._live: dict[str, TensorPlacement] = {}

    def alloc(self, name: str, values: int, kind: str) -> int:
        if values < 1:
            raise ValueError(f"{name}: cannot place {values} values")
        addr = None
        for i, (start, size) in enumerate(self._free):
            if size >= values:
                addr = start
                if size == values:
                    del self._free[i]
                else:
                    self._free[i] = (start + values, size - values)
                break
        if addr is None:
            addr = self.top
            self.top += values
        placement = TensorPlacement(name, addr, values, kind)
        self.placements.append(placement)
        self._live[name] = placement
        return addr

    def free(self, name: str) -> None:
        placement = self._live.pop(name)
        self._free.append((placement.addr, placement.values))
        self._free.sort()
        merged: list[tuple[int, int]] = []
        for start, size in self._free:
            if merged and merged[-1][0] + merged[-1][1] == start:
                merged[-1] = (merged[-1][0], merged[-1][1] + size)
            else:
                merged.append((start, size))
        self._free = merged


@dataclass(frozen=True)
class _Fm:
    """A planned DDR4 feature map (compile-time FmHandle)."""

    addr: int
    channels: int
    height: int
    width: int

    @property
    def tiles_y(self) -> int:
        return tiles_along(self.height)

    @property
    def tiles_x(self) -> int:
        return tiles_along(self.width)

    @property
    def values_per_channel(self) -> int:
        return self.tiles_y * self.tiles_x * TILE * TILE

    def channel_addr(self, channel: int) -> int:
        return self.addr + channel * self.values_per_channel


class _Lowering:
    """Mutable state of one lowering run."""

    def __init__(self, schedule: Schedule, cfg: CompileConfig):
        self.schedule = schedule
        self.cfg = cfg
        self.alloc = LivenessAllocator()
        self.params = CycleModelParams(lanes=cfg.lanes,
                                       group_size=cfg.lanes, tile=cfg.tile,
                                       bank_capacity=cfg.bank_capacity)
        self.done = 0        # accelerator done-counter after this point
        self.tiles = 0       # bank tile-write counter after this point
        self.fms: dict[str, _Fm] = {}
        self.refs: dict[str, int] = {}
        self.steps: list[ProgramStep] = []
        #: Conv layer -> (per-unit DDR4 addrs, per-unit stream sizes).
        self.weights: dict[str, tuple[list[int], list[int]]] = {}
        self.place_weights()

    def place_weights(self) -> None:
        """Place every conv's packed unit streams, before any feature map.

        Weight streams are staged into DDR4 once, before inference
        starts, and stay resident — so they must never land in a
        region the liveness allocator later recycles for feature
        maps. Allocating them all first (in schedule order) keeps the
        free list purely feature-map territory.
        """
        cfg = self.cfg
        for op in self.schedule.ops:
            if op.kind != "conv":
                continue
            qop = self.schedule.model.ops[op.layer.name]
            packed = PackedLayer.pack(qop.weights_q, tile=cfg.tile)
            sizes = [int(serialize_unit_stream(packed, unit,
                                               lanes=cfg.lanes,
                                               group_size=cfg.lanes).size)
                     for unit in range(cfg.lanes)]
            addrs = [self.alloc.alloc(f"{op.layer.name}.weights.u{unit}",
                                      max(1, sizes[unit]), "weights")
                     for unit in range(cfg.lanes)]
            self.weights[op.layer.name] = (addrs, sizes)

    # -- liveness ----------------------------------------------------------------

    def retain(self, tensor: str, shape: Shape) -> _Fm:
        """Place a feature-map tensor, refcounted by its consumers."""
        reads = len(self.schedule.consumers(tensor))
        if tensor == self.schedule.output_tensor:
            reads += 1   # the host reads the network output at the end
        addr = self.alloc.alloc(tensor, fm_values(shape, self.cfg.tile),
                                "fm")
        self.fms[tensor] = _Fm(addr, shape.c, shape.h, shape.w)
        self.refs[tensor] = reads
        return self.fms[tensor]

    def release(self, tensors: tuple[str, ...]) -> None:
        """Drop one reference per read; free maps after their last."""
        for tensor in tensors:
            if tensor not in self.refs:
                continue
            self.refs[tensor] -= 1
            if self.refs[tensor] == 0:
                self.alloc.free(tensor)
                del self.refs[tensor]

    # -- emission helpers --------------------------------------------------------

    def fm_load_dma(self, fm: _Fm, base_tile_addr: int
                    ) -> tuple[DmaDescriptor, ...]:
        """Whole-map DDR4 -> banks descriptors (pad/pool input)."""
        lanes = self.cfg.lanes
        word = self.cfg.tile * self.cfg.tile
        return tuple(DmaDescriptor(
            direction=DmaDirection.TO_BANK,
            dram_addr=fm.channel_addr(c),
            bank=c % lanes,
            bank_addr=(base_tile_addr
                       + (c // lanes) * fm.tiles_y * fm.tiles_x) * word,
            count=fm.values_per_channel)
            for c in range(fm.channels))

    def fm_store_dma(self, fm: _Fm, base_tile_addr: int
                     ) -> tuple[DmaDescriptor, ...]:
        """Whole-map banks -> DDR4 descriptors (pad/pool output)."""
        lanes = self.cfg.lanes
        word = self.cfg.tile * self.cfg.tile
        return tuple(DmaDescriptor(
            direction=DmaDirection.TO_DRAM,
            dram_addr=fm.channel_addr(c),
            bank=c % lanes,
            bank_addr=(base_tile_addr
                       + (c // lanes) * fm.tiles_y * fm.tiles_x) * word,
            count=fm.values_per_channel)
            for c in range(fm.channels))

    # -- per-op lowering ---------------------------------------------------------

    def lower_padpool(self, op: ScheduledOp) -> None:
        cfg = self.cfg
        word = cfg.tile * cfg.tile
        src = self.fms[op.inputs[0]]
        out = self.retain(op.output, op.out_shape)
        out_ty, out_tx = out.tiles_y, out.tiles_x
        max_local = -(-src.channels // cfg.lanes)
        ofm_base = max_local * src.tiles_y * src.tiles_x
        needed = (ofm_base + max_local * out_ty * out_tx) * word
        if needed > cfg.bank_capacity:
            raise MemoryError(
                f"{op.layer.name}: pad/pool needs {needed} values per "
                f"bank (IFM + OFM regions), capacity is "
                f"{cfg.bank_capacity}")
        if op.kind == "pad":
            opcode, pad = Opcode.PAD, op.layer.pad
            win, stride = 2, 2
        else:
            opcode, pad = Opcode.POOL, 0
            win, stride = op.layer.size, op.layer.stride
        self.done += cfg.lanes
        self.tiles += src.channels * out_ty * out_tx
        instrs = tuple(PadPoolInstruction(
            instr_id=self.done, opcode=opcode,
            ifm_base=0, ifm_tiles_y=src.tiles_y, ifm_tiles_x=src.tiles_x,
            local_channels=len(unit_channels(src.channels, unit,
                                             cfg.lanes)),
            ofm_base=ofm_base, ofm_tiles_y=out_ty, ofm_tiles_x=out_tx,
            pad=pad, win=win, stride=stride,
            ifm_height=src.height, ifm_width=src.width)
            for unit in range(cfg.lanes))
        stripe = StripeOp(
            ifm_dma=self.fm_load_dma(src, 0),
            instructions=instrs,
            ofm_dma=self.fm_store_dma(out, ofm_base),
            done_target=self.done, tile_writes_target=self.tiles)
        dma = sum(d.count for d in stripe.ifm_dma + stripe.ofm_dma)
        est = padpool_layer_cycles(out.channels, out_ty, out_tx,
                                   self.params)
        self.steps.append(ProgramStep(
            kind=op.kind, layer=op.layer.name, stripes=1,
            instructions=cfg.lanes, dma_values=dma, est_cycles=est,
            out_shape=op.out_shape.as_tuple(),
            inputs=op.inputs, output=op.output, ops=(stripe,)))
        self.release(op.inputs)

    def conv_stripes(self, src: _Fm, out_ty: int, out_tx: int,
                     out_channels: int, weight_bytes: int, halo: int,
                     name: str) -> list[tuple[int, int]]:
        """The driver's stripe plan, generalized to kernel-derived halo."""
        cfg = self.cfg
        word = cfg.tile * cfg.tile
        local_in = -(-src.channels // cfg.lanes)
        groups = -(-out_channels // cfg.lanes)
        ifm_row_cost = local_in * src.tiles_x * word
        ofm_row_cost = groups * out_tx * word
        budget = cfg.bank_capacity - weight_bytes - halo * ifm_row_cost
        max_rows = budget // (ifm_row_cost + ofm_row_cost)
        if max_rows < 1:
            raise MemoryError(
                f"{name}: one stripe row needs "
                f"{ifm_row_cost + ofm_row_cost} values plus "
                f"{weight_bytes} weight bytes; bank capacity "
                f"{cfg.bank_capacity} is too small")
        max_rows = min(max_rows, out_ty)
        plan, row = [], 0
        while row < out_ty:
            rows = min(max_rows, out_ty - row)
            plan.append((row, rows))
            row += rows
        return plan

    def lower_conv(self, op: ScheduledOp) -> None:
        cfg = self.cfg
        word = cfg.tile * cfg.tile
        layer = op.layer
        qop = self.schedule.model.ops[layer.name]
        packed = PackedLayer.pack(qop.weights_q, tile=cfg.tile)
        w_addrs, sizes = self.weights[layer.name]
        src = self.fms[op.inputs[0]]
        out = self.retain(op.output, op.out_shape)
        kernel = layer.kernel
        halo = -(-(kernel - 1) // cfg.tile) if kernel > 1 else 0
        out_ty, out_tx = out.tiles_y, out.tiles_x
        local_in = -(-src.channels // cfg.lanes)
        groups = -(-out.channels // cfg.lanes)
        plan = self.conv_stripes(src, out_ty, out_tx, out.channels,
                                 max(sizes), halo, layer.name)
        bias_tuple = tuple(int(b) for b in qop.bias_q.reshape(-1))
        row_values = src.tiles_x * word
        out_row_values = out_tx * word
        stripes: list[StripeOp] = []
        dma = 0
        for row0, rows in plan:
            ifm_rows = min(rows + halo, src.tiles_y - row0)
            ifm_dma = tuple(DmaDescriptor(
                direction=DmaDirection.TO_BANK,
                dram_addr=src.channel_addr(c) + row0 * row_values,
                bank=c % cfg.lanes,
                bank_addr=(c // cfg.lanes) * ifm_rows * row_values,
                count=ifm_rows * row_values)
                for c in range(src.channels))
            ofm_base = local_in * ifm_rows * src.tiles_x
            weight_base = (ofm_base + groups * rows * out_tx) * word
            weight_dma = tuple(DmaDescriptor(
                direction=DmaDirection.TO_BANK,
                dram_addr=w_addrs[unit], bank=unit,
                bank_addr=weight_base, count=sizes[unit])
                for unit in range(cfg.lanes) if sizes[unit] > 0)
            self.done += cfg.lanes
            self.tiles += groups * rows * out_tx * cfg.lanes
            instrs = tuple(ConvInstruction(
                instr_id=self.done,
                ifm_base=0, ifm_tiles_y=ifm_rows, ifm_tiles_x=src.tiles_x,
                local_channels=len(unit_channels(src.channels, unit,
                                                 cfg.lanes)),
                ofm_base=ofm_base, ofm_tiles_y=rows, ofm_tiles_x=out_tx,
                out_channels=out.channels,
                weight_base=weight_base, weight_bytes=sizes[unit],
                shift=qop.shift, apply_relu=op.fused_relu,
                biases=bias_tuple if unit == 0 else ())
                for unit in range(cfg.lanes))
            ofm_dma = tuple(DmaDescriptor(
                direction=DmaDirection.TO_DRAM,
                dram_addr=out.channel_addr(o) + row0 * out_row_values,
                bank=o % cfg.lanes,
                bank_addr=(ofm_base
                           + (o // cfg.lanes) * rows * out_tx) * word,
                count=rows * out_row_values)
                for o in range(out.channels))
            stripe = StripeOp(ifm_dma=ifm_dma, weight_dma=weight_dma,
                              instructions=instrs, ofm_dma=ofm_dma,
                              done_target=self.done,
                              tile_writes_target=self.tiles)
            dma += sum(d.count for d in ifm_dma + weight_dma + ofm_dma)
            stripes.append(stripe)
        modeled = conv_layer_cycles(
            layer.name, op.in_shapes[0].as_tuple(),
            op.out_shape.as_tuple(), kernel, packed.nnz_matrix(),
            self.params)
        self.steps.append(ProgramStep(
            kind="conv", layer=layer.name, stripes=len(plan),
            instructions=cfg.lanes * len(plan), dma_values=dma,
            est_cycles=modeled.cycles, out_shape=op.out_shape.as_tuple(),
            inputs=op.inputs, output=op.output, ops=tuple(stripes)))
        self.release(op.inputs)

    def lower_arm(self, op: ScheduledOp) -> None:
        """Flatten/FC/ReLU/merge/softmax: host-side steps.

        A merge or standalone ReLU whose result feeds an accelerator
        op materializes its output as a DDR4 feature map (the ARM
        writes it back in tiled layout); vector-domain results stay
        host-resident.
        """
        model = self.schedule.model
        est = 0
        if op.kind == "fc":
            est = model.ops[op.layer.name].weights_q.size  # ~1 MAC/cycle
        elif op.kind in ("relu", "add", "concat", "flatten"):
            est = op.out_shape.size   # ~1 touched value per ARM cycle
        if op.kind in ("relu", "add", "concat") \
                and self.schedule.domain[op.output] == "fm":
            self.retain(op.output, op.out_shape)
        self.steps.append(ProgramStep(
            kind=f"arm-{op.kind}", layer=op.layer.name,
            stripes=0, est_cycles=est,
            out_shape=op.out_shape.as_tuple(),
            inputs=op.inputs, output=op.output,
            fused_relu=op.fused_relu))
        self.release(op.inputs)


def compile_graph(network: Network, model: QuantizedModel,
                  config: CompileConfig | None = None) -> Program:
    """Compile an arbitrary layer DAG into an executable program."""
    cfg = config or CompileConfig()
    schedule = build_schedule(network, model)
    state = _Lowering(schedule, cfg)
    input_layer = network.layers[0]
    state.retain(input_layer.name, input_layer.shape)
    for op in schedule.ops:
        if op.kind in ("pad", "pool"):
            state.lower_padpool(op)
        elif op.kind == "conv":
            state.lower_conv(op)
        else:
            state.lower_arm(op)
    program = Program(network=network.name, steps=state.steps,
                      memory=state.alloc.placements, lanes=cfg.lanes,
                      bank_capacity=cfg.bank_capacity)
    return program
