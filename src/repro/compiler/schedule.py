"""Scheduling pass: a layer DAG to a linear op schedule.

The first compiler pass turns a :class:`~repro.nn.graph.Network` into
a deterministic, linear list of :class:`ScheduledOp` — one executable
operation per layer, in topological order, with every tensor named.
It decides three things the lowering pass then relies on:

* **Execution site.** Padding, convolution and pooling run on the
  accelerator; flatten, fully-connected layers, softmax, merges
  (residual add / concat) and un-fusable ReLUs run on the ARM, which
  reads and writes feature maps directly in DDR4 — exactly the
  paper's split, where the "software framework" owns everything the
  fabric does not.
* **ReLU fusion.** A ReLU whose sole producer is a conv or FC layer
  — and which is that producer's sole consumer — folds into the
  producer (the accelerator's write-back applies it for free). The
  fused ReLU's output *aliases* the producer's tensor; any other ReLU
  becomes an explicit ARM op.
* **Tensor naming.** Every op writes one tensor, named after its
  layer. Consumers reference tensors through the alias map, so
  fusion is invisible downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nn.graph import Network
from repro.nn.layers import (AddLayer, ConcatLayer, ConvLayer, FCLayer,
                             FlattenLayer, InputLayer, Layer, MaxPoolLayer,
                             PadLayer, ReluLayer, SoftmaxLayer)
from repro.nn.tensor import Shape
from repro.quant.quantize import QuantizedModel


class CompileError(ValueError):
    """The network cannot be lowered onto the accelerator."""


#: Op kinds executed on the accelerator fabric.
DEVICE_KINDS = frozenset({"pad", "conv", "pool"})


@dataclass(frozen=True)
class ScheduledOp:
    """One executable operation of the compiled schedule."""

    kind: str                    # pad|conv|pool|flatten|fc|relu|add|concat|softmax
    layer: Layer
    inputs: tuple[str, ...]      # tensor names read
    output: str                  # tensor name written (the layer's name)
    in_shapes: tuple[Shape, ...]
    out_shape: Shape
    fused_relu: bool = False     # conv/fc only

    @property
    def device(self) -> bool:
        return self.kind in DEVICE_KINDS


@dataclass
class Schedule:
    """The linear op schedule plus tensor metadata."""

    network: Network
    model: QuantizedModel
    ops: list[ScheduledOp] = field(default_factory=list)
    #: Layer name -> tensor name its output resolves to (fused ReLUs
    #: alias their producer's tensor).
    alias: dict[str, str] = field(default_factory=dict)
    #: Tensor name -> "fm" (CHW map in DDR4) or "vec" (flat ARM vector).
    domain: dict[str, str] = field(default_factory=dict)

    @property
    def output_tensor(self) -> str:
        """Tensor holding the network's declared output."""
        return self.alias[self.network.layers[-1].name]

    def consumers(self, tensor: str) -> list[ScheduledOp]:
        """Ops reading ``tensor``, in schedule order (with multiplicity)."""
        return [op for op in self.ops for t in op.inputs if t == tensor]


_KINDS = {
    PadLayer: "pad", ConvLayer: "conv", MaxPoolLayer: "pool",
    FlattenLayer: "flatten", FCLayer: "fc", ReluLayer: "relu",
    AddLayer: "add", ConcatLayer: "concat", SoftmaxLayer: "softmax",
}


def _fusable_relu(network: Network, layer: Layer) -> bool:
    """True when ``layer`` is a ReLU foldable into its producer."""
    if not isinstance(layer, ReluLayer):
        return False
    sources = network.inputs_of(layer.name)
    if len(sources) != 1:
        return False
    producer = network.layer(sources[0])
    if not isinstance(producer, (ConvLayer, FCLayer)):
        return False
    # The producer must feed only this ReLU: folding changes the
    # producer's stored tensor, which other consumers would observe.
    return network.consumers_of(producer.name) == (layer.name,)


def build_schedule(network: Network, model: QuantizedModel) -> Schedule:
    """Run the scheduling pass over ``network``."""
    schedule = Schedule(network=network, model=model)
    alias = schedule.alias
    domain = schedule.domain
    for layer in network.topo_layers():
        info = network.info(layer.name)
        if isinstance(layer, InputLayer):
            alias[layer.name] = layer.name
            domain[layer.name] = "fm"
            continue
        sources = tuple(alias[s] for s in network.inputs_of(layer.name))
        if _fusable_relu(network, layer):
            alias[layer.name] = sources[0]
            continue
        kind = _KINDS.get(type(layer))
        if kind is None:
            raise CompileError(
                f"{layer.name}: cannot compile {type(layer).__name__}")
        in_domains = {domain[s] for s in sources}
        if kind in DEVICE_KINDS and in_domains != {"fm"}:
            raise CompileError(
                f"{layer.name}: accelerator {kind} needs a feature-map "
                f"input, got {sorted(in_domains)}")
        if kind in ("add", "concat", "fc") and len(in_domains) != 1:
            raise CompileError(
                f"{layer.name}: mixed fm/vec inputs cannot merge")
        if isinstance(layer, ConvLayer):
            if layer.pad != 0:
                raise CompileError(
                    f"{layer.name}: convolution padding must be lowered "
                    f"to an explicit PadLayer (conv pad must be 0)")
            if layer.stride != 1:
                raise CompileError(
                    f"{layer.name}: the accelerator convolves with "
                    f"stride 1 only")
            if layer.name not in model.ops:
                raise CompileError(f"{layer.name}: not quantized")
        if isinstance(layer, FCLayer) and layer.name not in model.ops:
            raise CompileError(f"{layer.name}: not quantized")
        if isinstance(layer, (AddLayer, ConcatLayer)) \
                and layer.name not in model.merges:
            raise CompileError(f"{layer.name}: merge not calibrated")
        fused = False
        if isinstance(layer, (ConvLayer, FCLayer)):
            users = network.consumers_of(layer.name)
            fused = (len(users) == 1
                     and _fusable_relu(network, network.layer(users[0])))
        schedule.ops.append(ScheduledOp(
            kind=kind, layer=layer, inputs=sources, output=layer.name,
            in_shapes=info.in_shapes, out_shape=info.out_shape,
            fused_relu=fused))
        alias[layer.name] = layer.name
        if kind in ("flatten", "fc"):
            domain[layer.name] = "vec"
        elif kind in ("relu", "add", "concat", "softmax"):
            domain[layer.name] = next(iter(in_domains))
        else:
            domain[layer.name] = "fm"
    return schedule
