"""Assembler / disassembler for accelerator instruction streams.

The encoded mailbox words of a compiled :class:`~repro.soc.program.
Program` form a self-framing stream (each instruction's first word
carries its opcode; a conv's bias count sits in its header), so the
stream disassembles greedily into a textual listing — one instruction
per line of ``key=value`` fields — and the listing assembles back to
the exact same words. The round-trip is byte-exact in both
directions, which is what lets CI diff two independent compiles of
the same network.

Comment lines start with ``;`` and are ignored by the assembler.
"""

from __future__ import annotations

import struct

from repro.core.instructions import (ConvInstruction, Opcode,
                                     PadPoolInstruction)
from repro.soc.isa import (CONV_HEADER_WORDS, MalformedInstructionError,
                           decode_instruction, encode_instruction,
                           instruction_length)
from repro.soc.program import Program


class AsmError(ValueError):
    """A listing line cannot be parsed back into an instruction."""


def program_words(program: Program) -> list[int]:
    """All encoded instruction words of ``program`` in issue order."""
    words: list[int] = []
    for step in program.steps:
        for stripe in step.ops:
            for instr in stripe.instructions:
                words.extend(encode_instruction(instr))
    return words


def words_to_bytes(words: list[int]) -> bytes:
    """Little-endian 32-bit serialization of a word stream."""
    return struct.pack(f"<{len(words)}I", *words)


def bytes_to_words(blob: bytes) -> list[int]:
    if len(blob) % 4:
        raise MalformedInstructionError(
            f"{len(blob)} bytes is not a whole number of 32-bit words")
    return list(struct.unpack(f"<{len(blob) // 4}I", blob))


def split_stream(words: list[int]) -> list[list[int]]:
    """Frame a raw word stream into per-instruction word lists."""
    frames: list[list[int]] = []
    i = 0
    while i < len(words):
        length = instruction_length(words[i])
        if length == CONV_HEADER_WORDS:
            if i + CONV_HEADER_WORDS > len(words):
                raise MalformedInstructionError(
                    "truncated convolution instruction at end of stream")
            length += words[i + CONV_HEADER_WORDS - 1] & 0xFFFF
        if i + length > len(words):
            raise MalformedInstructionError(
                "truncated instruction at end of stream")
        frames.append(words[i:i + length])
        i += length
    return frames


def disassemble_instruction(instr) -> str:
    """One instruction as a single listing line."""
    if isinstance(instr, ConvInstruction):
        biases = ",".join(str(b) for b in instr.biases) or "-"
        return (f"conv id={instr.instr_id}"
                f" ifm={instr.ifm_base}:{instr.ifm_tiles_y}x"
                f"{instr.ifm_tiles_x}"
                f" local={instr.local_channels}"
                f" ofm={instr.ofm_base}:{instr.ofm_tiles_y}x"
                f"{instr.ofm_tiles_x}"
                f" out={instr.out_channels}"
                f" w={instr.weight_base}+{instr.weight_bytes}"
                f" shift={instr.shift}"
                f" relu={int(instr.apply_relu)}"
                f" compact={int(instr.compact_weights)}"
                f" biases={biases}")
    if isinstance(instr, PadPoolInstruction):
        return (f"{instr.opcode.value} id={instr.instr_id}"
                f" ifm={instr.ifm_base}:{instr.ifm_tiles_y}x"
                f"{instr.ifm_tiles_x}"
                f" local={instr.local_channels}"
                f" ofm={instr.ofm_base}:{instr.ofm_tiles_y}x"
                f"{instr.ofm_tiles_x}"
                f" geom={instr.ifm_height}x{instr.ifm_width}"
                f" pad={instr.pad} win={instr.win} stride={instr.stride}")
    raise TypeError(f"cannot disassemble {type(instr).__name__}")


def _fields(tokens: list[str], line_no: int) -> dict[str, str]:
    fields: dict[str, str] = {}
    for token in tokens:
        if "=" not in token:
            raise AsmError(f"line {line_no}: malformed field {token!r}")
        key, value = token.split("=", 1)
        if key in fields:
            raise AsmError(f"line {line_no}: duplicate field {key!r}")
        fields[key] = value
    return fields


def _base_tiles(value: str, line_no: int) -> tuple[int, int, int]:
    """Parse ``base:tyxtx`` into (base, tiles_y, tiles_x)."""
    try:
        base, tiles = value.split(":")
        ty, tx = tiles.split("x")
        return int(base), int(ty), int(tx)
    except ValueError:
        raise AsmError(
            f"line {line_no}: expected base:tyxtx, got {value!r}") from None


def parse_instruction(line: str, line_no: int = 0):
    """One listing line back into an instruction object."""
    tokens = line.split()
    mnemonic, fields = tokens[0], _fields(tokens[1:], line_no)
    try:
        if mnemonic == "conv":
            ifm_base, ifm_ty, ifm_tx = _base_tiles(fields["ifm"], line_no)
            ofm_base, ofm_ty, ofm_tx = _base_tiles(fields["ofm"], line_no)
            weight_base, weight_bytes = (int(v) for v in
                                         fields["w"].split("+"))
            biases = () if fields["biases"] == "-" else tuple(
                int(b) for b in fields["biases"].split(","))
            return ConvInstruction(
                instr_id=int(fields["id"]), ifm_base=ifm_base,
                ifm_tiles_y=ifm_ty, ifm_tiles_x=ifm_tx,
                local_channels=int(fields["local"]),
                ofm_base=ofm_base, ofm_tiles_y=ofm_ty, ofm_tiles_x=ofm_tx,
                out_channels=int(fields["out"]),
                weight_base=weight_base, weight_bytes=weight_bytes,
                shift=int(fields["shift"]),
                apply_relu=bool(int(fields["relu"])),
                compact_weights=bool(int(fields["compact"])),
                biases=biases)
        if mnemonic in ("pad", "pool"):
            ifm_base, ifm_ty, ifm_tx = _base_tiles(fields["ifm"], line_no)
            ofm_base, ofm_ty, ofm_tx = _base_tiles(fields["ofm"], line_no)
            height, width = (int(v) for v in fields["geom"].split("x"))
            return PadPoolInstruction(
                instr_id=int(fields["id"]),
                opcode=Opcode.PAD if mnemonic == "pad" else Opcode.POOL,
                ifm_base=ifm_base, ifm_tiles_y=ifm_ty, ifm_tiles_x=ifm_tx,
                local_channels=int(fields["local"]),
                ofm_base=ofm_base, ofm_tiles_y=ofm_ty, ofm_tiles_x=ofm_tx,
                pad=int(fields["pad"]), win=int(fields["win"]),
                stride=int(fields["stride"]),
                ifm_height=height, ifm_width=width)
    except (KeyError, ValueError) as exc:
        raise AsmError(f"line {line_no}: {exc}") from exc
    raise AsmError(f"line {line_no}: unknown mnemonic {mnemonic!r}")


def disassemble(source: Program | list[int]) -> str:
    """A program (or raw word stream) as a textual listing."""
    if isinstance(source, Program):
        lines = [f"; {source.network}: "
                 f"{source.total_instructions} instructions, "
                 f"lanes={source.lanes}, "
                 f"bank_capacity={source.bank_capacity}"]
        for step in source.steps:
            if not step.ops:
                continue
            lines.append(f"; {step.layer} ({step.kind}, "
                         f"{step.stripes} stripe(s))")
            for stripe in step.ops:
                lines.extend(disassemble_instruction(i)
                             for i in stripe.instructions)
        return "\n".join(lines) + "\n"
    frames = split_stream(list(source))
    return "\n".join(disassemble_instruction(decode_instruction(f))
                     for f in frames) + ("\n" if frames else "")


def assemble(text: str) -> list[int]:
    """A textual listing back into the exact mailbox word stream."""
    words: list[int] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        words.extend(encode_instruction(parse_instruction(line, line_no)))
    return words
