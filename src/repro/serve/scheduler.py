"""The serving simulator: arrivals -> batches -> N accelerator instances.

A deterministic discrete-event simulation on the fabric-cycle timebase.
Requests arrive from a seeded :mod:`~repro.serve.traffic` process, are
admitted into the :class:`~repro.serve.queue.RequestQueue`, grouped by
the :class:`~repro.serve.batcher.DynamicBatcher`, and dispatched to the
first idle accelerator instance.  Batch cost comes from the calibrated
:class:`~repro.serve.engine.ServiceProfile` (measured on the real
cycle-accurate SoC path), split into a DDR4-bound share and a
compute-bound share.

**Contention model.**  All instances hang off one DDR4 (the Fig. 1 /
Section IV-D system: the 512-opt pair shares a single SDRAM
controller, arbitrated round-robin at burst granularity by
:class:`~repro.soc.sdram.SdramController`).  The scheduler models that
arbitration as processor sharing: at any moment the ``k`` jobs in
their memory phase each progress at ``1/k`` of the DDR4 rate, while
compute phases always progress at full rate.  Time is kept as exact
:class:`~fractions.Fraction` cycles so event ordering — and therefore
the whole report — is bit-deterministic for a fixed seed.  With
``contention=False`` every instance gets a private memory system and
throughput scales exactly linearly; with it enabled, N instances
deliver strictly less than N× (asserted by the property suite),
because overlapping memory phases stretch.

**Faults.**  With ``fault_rate > 0``, each batch execution may take a
deterministic pseudo-random fault (:func:`repro.faults.hooks.chance`
keyed by batch id and attempt).  The faulted instance is drained
(offline for ``drain_cycles``) and the batch is resubmitted under the
driver's existing :class:`~repro.soc.driver.ResiliencePolicy`: up to
``layer_replays`` resubmissions with the policy's bounded exponential
back-off, after which the batch's requests are failed (never silently
dropped).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable

from repro.faults.hooks import chance, prf, stable_id
from repro.serve.batcher import Batch, BatchPolicy, DynamicBatcher
from repro.serve.engine import (ServeEngine, ServeWorkload, ServiceProfile,
                                calibrate_profile, output_digest)
from repro.serve.queue import RequestQueue
from repro.serve.report import (InstanceStats, RequestOutcome, ServeReport,
                                build_report)
from repro.serve.traffic import TrafficTrace, make_trace
from repro.soc.driver import ResiliencePolicy

#: Key separating serve fault draws from repro.faults' own PRF streams.
_SERVE_KEY = stable_id("serve.batch_fault")


@dataclass(frozen=True)
class ServeConfig:
    """One serving experiment, fully determined by its fields + seed."""

    instances: int = 2
    policy: BatchPolicy = BatchPolicy()
    resilience: ResiliencePolicy = ResiliencePolicy()
    workload: ServeWorkload = ServeWorkload()
    traffic: str = "poisson"          # poisson | burst | replay
    requests: int = 64
    mean_interarrival_cycles: float = 6000.0
    bursts: int = 4
    burst_size: int = 8
    burst_gap_cycles: int = 40_000
    replay_gaps: tuple[int, ...] | None = None
    seed: int = 0
    queue_capacity: int | None = None
    contention: bool = True           # shared-DDR4 model on/off
    outputs: str = "model"            # functional backend (see engine)
    fault_rate: float = 0.0           # per batch execution
    drain_cycles: int = 256           # faulted-instance drain time
    clock_mhz: float = 120.0          # 512-opt achieved clock
    bank_capacity: int = 1 << 14
    timeline: bool = False

    def __post_init__(self):
        if self.instances < 1:
            raise ValueError("need at least one instance")
        if self.requests < 0:
            raise ValueError("requests must be >= 0")
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError("fault_rate must be in [0, 1]")
        if self.drain_cycles < 0:
            raise ValueError("drain_cycles must be >= 0")

    def trace(self) -> TrafficTrace:
        return make_trace(
            self.traffic, self.seed, count=self.requests,
            mean_interarrival_cycles=self.mean_interarrival_cycles,
            bursts=self.bursts, burst_size=self.burst_size,
            gap_cycles=self.burst_gap_cycles, gaps=self.replay_gaps)


def smoke_config(seed: int = 0) -> ServeConfig:
    """CI-scale config: small trace, faults armed, both instances busy."""
    return ServeConfig(
        instances=2, requests=24,
        policy=BatchPolicy(max_batch=4, max_wait_cycles=3000),
        mean_interarrival_cycles=2500.0,
        fault_rate=0.12, seed=seed)


def default_config(seed: int = 0) -> ServeConfig:
    """The full evaluation run behind ``repro serve``."""
    return ServeConfig(
        instances=2, requests=96,
        policy=BatchPolicy(max_batch=4, max_wait_cycles=4096),
        mean_interarrival_cycles=4000.0,
        fault_rate=0.05, seed=seed)


class _Job:
    """One batch executing on one instance (exact remaining work)."""

    __slots__ = ("batch", "instance", "mem_rem", "compute_rem",
                 "work_done", "fault_at", "started")

    def __init__(self, batch: Batch, instance: int, mem_cycles: int,
                 compute_cycles: int, fault_at: Fraction | None,
                 started: Fraction):
        self.batch = batch
        self.instance = instance
        self.mem_rem = Fraction(mem_cycles)
        self.compute_rem = Fraction(compute_cycles)
        self.work_done = Fraction(0)
        self.fault_at = fault_at        # work threshold, None = no fault
        self.started = started

    @property
    def in_mem(self) -> bool:
        return self.mem_rem > 0

    @property
    def done(self) -> bool:
        return self.mem_rem <= 0 and self.compute_rem <= 0

    @property
    def faulted(self) -> bool:
        return self.fault_at is not None and self.work_done >= self.fault_at

    def next_event_dt(self, mem_rate: Fraction) -> Fraction:
        """Time to this job's next state change at current rates."""
        if self.in_mem:
            rate, phase_rem = mem_rate, self.mem_rem
        else:
            rate, phase_rem = Fraction(1), self.compute_rem
        dt = phase_rem / rate
        if self.fault_at is not None:
            to_fault = self.fault_at - self.work_done
            if to_fault <= phase_rem:
                dt = min(dt, max(Fraction(0), to_fault) / rate)
        return dt

    def advance(self, dt: Fraction, mem_rate: Fraction) -> None:
        if dt <= 0:
            return
        if self.in_mem:
            progress = dt * mem_rate
            self.mem_rem -= progress
        else:
            progress = dt
            self.compute_rem -= progress
        self.work_done += progress


@dataclass
class ServeResult:
    """Everything one serving run produced."""

    config: ServeConfig
    trace: TrafficTrace
    profile: ServiceProfile
    report: ServeReport
    outputs: dict[int, "object"] = field(default_factory=dict)
    timeline: "object | None" = None

    def chrome_trace(self) -> dict:
        if self.timeline is None:
            raise ValueError("run with ServeConfig(timeline=True) "
                             "to record a serving timeline")
        return self.timeline.chrome_trace()


def _fault_threshold(config: ServeConfig, batch: Batch,
                     total_work: int) -> Fraction | None:
    """Deterministic fault point for this (batch, attempt), if any."""
    if config.fault_rate <= 0:
        return None
    if not chance(config.fault_rate, config.seed, _SERVE_KEY,
                  batch.bid, batch.attempts):
        return None
    # Fault position as a coarse fraction of the batch's total work
    # (coarse keeps the exact-arithmetic denominators small).
    position = prf(config.seed, _SERVE_KEY, batch.bid, batch.attempts, 1)
    numerator = min(4095, max(1, round(position * 4096)))
    return Fraction(numerator * total_work, 4096)


def run_serve(config: ServeConfig | None = None,
              echo: Callable[[str], None] | None = None) -> ServeResult:
    """Run one serving experiment end to end."""
    config = config or ServeConfig()
    trace = config.trace()
    profile = calibrate_profile(config.workload, config.bank_capacity)
    if echo:
        echo(f"calibrated service profile: {profile.image_cycles} cyc/img "
             f"({100 * profile.mem_fraction:.0f}% DDR4-bound), "
             f"{config.instances} instance(s), "
             f"{len(trace)} requests ({trace.kind})")
    engine = ServeEngine(config.workload, outputs=config.outputs)
    queue = RequestQueue(config.queue_capacity)
    batcher = DynamicBatcher(queue, config.policy)
    timeline = None
    if config.timeline:
        from repro.obs.serving import ServingTimeline
        timeline = ServingTimeline()
    stats = [InstanceStats(i) for i in range(config.instances)]
    idle: list[int] = list(range(config.instances))
    offline: dict[int, Fraction] = {}
    jobs: dict[int, _Job] = {}
    ready: list[tuple[Fraction, Batch]] = []
    outcomes: list[RequestOutcome] = []
    outputs: dict[int, object] = {}
    resubmissions = 0
    policy = config.resilience
    arrivals = list(trace)
    next_arrival = 0
    now = Fraction(0)

    def mem_rate() -> Fraction:
        if not config.contention:
            return Fraction(1)
        busy = sum(1 for job in jobs.values() if job.in_mem)
        return Fraction(1, busy) if busy > 1 else Fraction(1)

    def dispatch(batch: Batch, instance: int) -> None:
        batch.attempts += 1
        mem = profile.batch_mem_cycles(batch.size)
        compute = profile.batch_compute_cycles(batch.size)
        fault_at = _fault_threshold(config, batch, mem + compute)
        jobs[instance] = _Job(batch, instance, mem, compute, fault_at, now)

    def settle() -> None:
        """Process everything due at the current instant."""
        nonlocal next_arrival
        while (next_arrival < len(arrivals)
               and arrivals[next_arrival].arrival_cycle <= now):
            queue.push(now, arrivals[next_arrival])
            next_arrival += 1
        while batcher.ready(now, next_arrival < len(arrivals)):
            ready.append((now, batcher.close(now)))
        while idle and any(at <= now for at, _ in ready):
            index = next(i for i, (at, _) in enumerate(ready) if at <= now)
            _, batch = ready.pop(index)
            dispatch(batch, idle.pop(0))
        if timeline is not None:
            timeline.sample(now, len(queue), len(jobs))

    def complete(instance: int, job: _Job) -> None:
        entry = stats[instance]
        entry.batches_completed += 1
        entry.images_completed += job.batch.size
        entry.busy_cycles += float(now - job.started)
        for request in job.batch.requests:
            outputs[request.rid] = engine.run_image(request.image_seed)
            outcomes.append(RequestOutcome(
                rid=request.rid, arrival_cycle=request.arrival_cycle,
                batch=job.batch.bid, instance=instance,
                done_cycle=float(now),
                latency_cycles=float(now - request.arrival_cycle)))
        if timeline is not None:
            timeline.add_batch_span(
                instance, f"batch{job.batch.bid} x{job.batch.size}",
                job.started, now, True, attempt=job.batch.attempts)
        del jobs[instance]
        idle.append(instance)
        idle.sort()

    def take_fault(instance: int, job: _Job) -> None:
        nonlocal resubmissions
        entry = stats[instance]
        entry.faults += 1
        entry.busy_cycles += float(now - job.started)
        if timeline is not None:
            timeline.add_batch_span(
                instance, f"batch{job.batch.bid} x{job.batch.size}",
                job.started, now, False, attempt=job.batch.attempts)
        del jobs[instance]
        offline[instance] = now + config.drain_cycles
        batch = job.batch
        if batch.attempts > policy.batch_resubmits:
            for request in batch.requests:
                outcomes.append(RequestOutcome(
                    rid=request.rid, arrival_cycle=request.arrival_cycle,
                    batch=batch.bid, instance=-1, done_cycle=float(now),
                    latency_cycles=0.0, failed=True))
            return
        resubmissions += 1
        backoff = policy.backoff(batch.attempts - 1)
        ready.insert(0, (now + backoff, batch))

    guard = 0
    while (next_arrival < len(arrivals) or len(queue) or ready or jobs):
        guard += 1
        if guard > 10_000_000:
            raise RuntimeError("serve scheduler failed to converge")
        settle()
        if not (next_arrival < len(arrivals) or len(queue)
                or ready or jobs):
            break
        candidates: list[Fraction] = []
        if next_arrival < len(arrivals):
            candidates.append(Fraction(
                arrivals[next_arrival].arrival_cycle))
        if len(queue):
            deadline = batcher.deadline()
            if deadline is not None and Fraction(deadline) > now:
                candidates.append(Fraction(deadline))
        for ready_at, _ in ready:
            if ready_at > now:
                candidates.append(ready_at)
        candidates.extend(offline.values())
        rate = mem_rate()
        for job in jobs.values():
            candidates.append(now + job.next_event_dt(rate))
        target = min(candidates)
        if target > now:
            dt = target - now
            for job in jobs.values():
                job.advance(dt, rate)
            now = target
        for instance in sorted(offline):
            if offline[instance] <= now:
                del offline[instance]
                idle.append(instance)
                idle.sort()
        for instance in sorted(jobs):
            job = jobs[instance]
            if job.faulted:
                take_fault(instance, job)
            elif job.done:
                complete(instance, job)

    makespan = float(now)
    digest = output_digest(outputs)
    report = build_report(
        seed=config.seed, instances=config.instances,
        contention=config.contention, traffic_kind=trace.kind,
        clock_mhz=config.clock_mhz,
        workload={
            "in_channels": config.workload.in_channels,
            "hw": config.workload.hw,
            "out_channels": config.workload.out_channels,
            "kernel": config.workload.kernel,
            "macs_nominal": config.workload.macs_nominal,
        },
        profile={
            "image_cycles": profile.image_cycles,
            "compute_cycles": profile.compute_cycles,
            "image_mem_cycles": profile.image_mem_cycles,
            "weight_mem_cycles": profile.weight_mem_cycles,
            "mem_fraction": profile.mem_fraction,
        },
        policy={
            "max_batch": config.policy.max_batch,
            "max_wait_cycles": config.policy.max_wait_cycles,
        },
        offered=len(trace), admitted=queue.admitted,
        dropped=queue.dropped, outcomes=outcomes,
        resubmissions=resubmissions, makespan_cycles=makespan,
        queue_mean_depth=queue.mean_depth(now if now > 0 else 1),
        queue_max_depth=queue.max_depth,
        batches_formed=batcher.formed,
        batch_size_hist=batcher.size_hist,
        instance_stats=stats, output_digest=digest)
    if echo:
        echo(f"served {report.completed}/{report.offered} requests in "
             f"{makespan:.0f} cycles "
             f"({report.throughput_img_s:.1f} img/s)")
    return ServeResult(config=config, trace=trace, profile=profile,
                       report=report, outputs=outputs, timeline=timeline)
