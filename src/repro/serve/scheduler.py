"""The serving simulator: arrivals -> batches -> N accelerator instances.

A deterministic discrete-event simulation on the fabric-cycle timebase.
Requests arrive from a seeded :mod:`~repro.serve.traffic` process, are
admitted into the :class:`~repro.serve.queue.RequestQueue`, grouped by
the :class:`~repro.serve.batcher.DynamicBatcher`, and dispatched to the
first idle healthy accelerator instance.  Batch cost comes from the
calibrated :class:`~repro.serve.engine.ServiceProfile` (measured on the
real cycle-accurate SoC path), split into a DDR4-bound share and a
compute-bound share.

**Contention model.**  All instances hang off one DDR4 (the Fig. 1 /
Section IV-D system: the 512-opt pair shares a single SDRAM
controller, arbitrated round-robin at burst granularity by
:class:`~repro.soc.sdram.SdramController`).  The scheduler models that
arbitration as processor sharing: at any moment the ``k`` jobs in
their memory phase each progress at ``1/k`` of the DDR4 rate, while
compute phases always progress at full rate.  Time is kept as exact
:class:`~fractions.Fraction` cycles so event ordering — and therefore
the whole report — is bit-deterministic for a fixed seed.  With
``contention=False`` every instance gets a private memory system and
throughput scales exactly linearly; with it enabled, N instances
deliver strictly less than N× (asserted by the property suite),
because overlapping memory phases stretch.

**Resilience** (:mod:`repro.serve.resilience`).  The serving-side
fault story is governed by a :class:`ServePolicy` (split out of the
SoC driver's ``ResiliencePolicy``; the old ``batch_resubmits`` field
still works as a deprecation alias via
:meth:`ServePolicy.from_resilience`):

* **deadlines** — with ``slo_classes`` configured, every request
  carries a deadline; queued requests whose deadline passed are
  *expired*, requests that could no longer make their SLO even if
  dispatched immediately are *shed*, and batch formation closes early
  enough that the tightest member deadline can still be met;
* **faults + retry** — with ``fault_rate > 0`` each batch execution
  may take a deterministic pseudo-random fault
  (:func:`repro.faults.hooks.chance` keyed by batch id and attempt);
  the instance drains offline for ``drain_cycles`` and the batch
  resubmits with the policy's bounded, deterministically-jittered
  exponential back-off, after which its requests are failed (never
  silently dropped);
* **hedging** — with ``hedge_factor`` set, a batch running longer
  than ``factor x`` its uncontended service estimate is re-dispatched
  to a second healthy idle instance; first completion wins and the
  loser is cancelled at that exact Fraction instant;
* **health + failover** — a per-instance circuit breaker ejects an
  instance after ``eject_after`` consecutive faults and probes it
  back with a half-open trial batch; scripted instance faults
  (``instance_faults``: fail-stop, flapping, degraded replicas — see
  :mod:`repro.faults.serving`) take instances down or derate their
  service rate, and in-flight work on a dying instance is drained and
  requeued at the head of the dispatch queue.

An armed-but-idle policy (no faults fire, no deadline binds, no hedge
triggers) leaves the fault-free report *byte-identical* — gated by
``benchmarks/bench_serve_resilience.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable

from repro.faults.hooks import chance, prf, stable_id
from repro.serve.batcher import Batch, BatchPolicy, DynamicBatcher
from repro.serve.engine import (ServeEngine, ServeWorkload, ServiceProfile,
                                calibrate_profile, output_digest)
from repro.serve.queue import RequestQueue
from repro.serve.report import (InstanceStats, RequestOutcome, ServeReport,
                                build_report)
from repro.serve.resilience import (FleetDisruptions, InstanceHealth,
                                    ServePolicy, SloClass,
                                    assign_slo_classes)
from repro.serve.traffic import TrafficTrace, make_trace
from repro.soc.driver import ResiliencePolicy

#: Key separating serve fault draws from repro.faults' own PRF streams.
_SERVE_KEY = stable_id("serve.batch_fault")


@dataclass(frozen=True)
class ServeConfig:
    """One serving experiment, fully determined by its fields + seed."""

    instances: int = 2
    policy: BatchPolicy = BatchPolicy()
    resilience: ResiliencePolicy = ResiliencePolicy()
    #: Serving-side resilience policy.  ``None`` derives one from
    #: ``resilience`` (deprecation alias: its ``batch_resubmits`` and
    #: back-off knobs, everything new off) so pre-split configs behave
    #: identically.
    serve_policy: ServePolicy | None = None
    #: SLO traffic classes; ``None`` = everything best-effort (no
    #: deadlines, no shedding — the legacy behaviour).
    slo_classes: tuple[SloClass, ...] | None = None
    #: Scripted instance faults (fail-stop / degrade / flap events,
    #: :class:`repro.faults.serving.InstanceFault`).
    instance_faults: tuple = ()
    workload: ServeWorkload = ServeWorkload()
    traffic: str = "poisson"          # poisson | burst | replay
    requests: int = 64
    mean_interarrival_cycles: float = 6000.0
    bursts: int = 4
    burst_size: int = 8
    burst_gap_cycles: int = 40_000
    replay_gaps: tuple[int, ...] | None = None
    seed: int = 0
    queue_capacity: int | None = None
    contention: bool = True           # shared-DDR4 model on/off
    outputs: str = "model"            # functional backend (see engine)
    fault_rate: float = 0.0           # per batch execution
    drain_cycles: int = 256           # faulted-instance drain time
    clock_mhz: float = 120.0          # 512-opt achieved clock
    bank_capacity: int = 1 << 14
    timeline: bool = False
    #: Arm the request-scoped flight recorder (span trees + exact
    #: critical-path attribution, :mod:`repro.obs.flight`).
    #: Observation-only: the run is bit-identical with it armed.
    flight: bool = False

    def __post_init__(self):
        if self.instances < 1:
            raise ValueError("need at least one instance")
        if self.requests < 0:
            raise ValueError("requests must be >= 0")
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError("fault_rate must be in [0, 1]")
        if self.drain_cycles < 0:
            raise ValueError("drain_cycles must be >= 0")
        for fault in self.instance_faults:
            if fault.instance >= self.instances:
                raise ValueError(f"instance fault targets instance "
                                 f"{fault.instance} of {self.instances}")

    def effective_policy(self) -> ServePolicy:
        """The serving policy actually applied by :func:`run_serve`."""
        if self.serve_policy is not None:
            return self.serve_policy
        return ServePolicy.from_resilience(self.resilience)

    def trace(self) -> TrafficTrace:
        trace = make_trace(
            self.traffic, self.seed, count=self.requests,
            mean_interarrival_cycles=self.mean_interarrival_cycles,
            bursts=self.bursts, burst_size=self.burst_size,
            gap_cycles=self.burst_gap_cycles, gaps=self.replay_gaps)
        if self.slo_classes is not None:
            trace = assign_slo_classes(trace, self.slo_classes, self.seed)
        return trace


def smoke_config(seed: int = 0) -> ServeConfig:
    """CI-scale config: small trace, faults armed, both instances busy."""
    return ServeConfig(
        instances=2, requests=24,
        policy=BatchPolicy(max_batch=4, max_wait_cycles=3000),
        mean_interarrival_cycles=2500.0,
        fault_rate=0.12, seed=seed)


def default_config(seed: int = 0) -> ServeConfig:
    """The full evaluation run behind ``repro serve``."""
    return ServeConfig(
        instances=2, requests=96,
        policy=BatchPolicy(max_batch=4, max_wait_cycles=4096),
        mean_interarrival_cycles=4000.0,
        fault_rate=0.05, seed=seed)


class _Job:
    """One batch leg executing on one instance (exact remaining work)."""

    __slots__ = ("batch", "instance", "mem_rem", "compute_rem",
                 "work_done", "fault_at", "started", "hedge", "probe",
                 "split")

    def __init__(self, batch: Batch, instance: int, mem_cycles: int,
                 compute_cycles: int, fault_at: Fraction | None,
                 started: Fraction, hedge: bool = False,
                 probe: bool = False):
        self.batch = batch
        self.instance = instance
        self.mem_rem = Fraction(mem_cycles)
        self.compute_rem = Fraction(compute_cycles)
        self.work_done = Fraction(0)
        self.fault_at = fault_at        # work threshold, None = no fault
        self.started = started
        self.hedge = hedge              # hedged re-dispatch leg
        self.probe = probe              # half-open breaker trial
        #: ``[ideal, contention, derate]`` exact-Fraction accumulators
        #: when the flight recorder is armed; ``None`` keeps the clean
        #: path's advance() untouched (one attribute test per event).
        self.split: list[Fraction] | None = None

    @property
    def in_mem(self) -> bool:
        return self.mem_rem > 0

    @property
    def done(self) -> bool:
        return self.mem_rem <= 0 and self.compute_rem <= 0

    @property
    def faulted(self) -> bool:
        return self.fault_at is not None and self.work_done >= self.fault_at

    def next_event_dt(self, mem_rate: Fraction,
                      derate: Fraction) -> Fraction:
        """Time to this job's next state change at current rates."""
        if self.in_mem:
            rate, phase_rem = mem_rate / derate, self.mem_rem
        else:
            rate, phase_rem = Fraction(1) / derate, self.compute_rem
        dt = phase_rem / rate
        if self.fault_at is not None:
            to_fault = self.fault_at - self.work_done
            if to_fault <= phase_rem:
                dt = min(dt, max(Fraction(0), to_fault) / rate)
        return dt

    def advance(self, dt: Fraction, mem_rate: Fraction,
                derate: Fraction) -> None:
        if dt <= 0:
            return
        if self.in_mem:
            progress = dt * mem_rate / derate
            self.mem_rem -= progress
            if self.split is not None:
                # dt = ideal + contention stall + derate stall, exactly:
                # dt = progress + dt(1-mem_rate) + dt·mem_rate(1-1/derate)
                self.split[0] += progress
                self.split[1] += dt * (1 - mem_rate)
                self.split[2] += dt * mem_rate * (1 - Fraction(1) / derate)
        else:
            progress = dt / derate
            self.compute_rem -= progress
            if self.split is not None:
                self.split[0] += progress
                self.split[2] += dt - progress
        self.work_done += progress


@dataclass
class ServeResult:
    """Everything one serving run produced."""

    config: ServeConfig
    trace: TrafficTrace
    profile: ServiceProfile
    report: ServeReport
    outputs: dict[int, "object"] = field(default_factory=dict)
    timeline: "object | None" = None
    flight: "object | None" = None

    def chrome_trace(self) -> dict:
        """Trace document: serving tracks, flight tracks, or both merged."""
        documents = []
        if self.timeline is not None:
            documents.append(self.timeline.chrome_trace())
        if self.flight is not None:
            documents.append(self.flight.chrome_trace())
        if not documents:
            raise ValueError("run with ServeConfig(timeline=True) "
                             "to record a serving timeline")
        if len(documents) == 1:
            return documents[0]
        from repro.obs.trackreg import merge_traces
        return merge_traces(*documents)


def _fault_threshold(config: ServeConfig, batch: Batch,
                     total_work: int) -> Fraction | None:
    """Deterministic fault point for this (batch, attempt), if any."""
    if config.fault_rate <= 0:
        return None
    if not chance(config.fault_rate, config.seed, _SERVE_KEY,
                  batch.bid, batch.attempts):
        return None
    # Fault position as a coarse fraction of the batch's total work
    # (coarse keeps the exact-arithmetic denominators small).
    position = prf(config.seed, _SERVE_KEY, batch.bid, batch.attempts, 1)
    numerator = min(4095, max(1, round(position * 4096)))
    return Fraction(numerator * total_work, 4096)


def run_serve(config: ServeConfig | None = None,
              echo: Callable[[str], None] | None = None) -> ServeResult:
    """Run one serving experiment end to end."""
    from repro.obs.cache import cache_stats, reset_caches

    config = config or ServeConfig()
    # Reset cache entries *and* counters up front so the report's cache
    # section is identical whether this is the first run of the process
    # or the hundredth (byte-determinism; re-calibration is cheap).
    reset_caches()
    trace = config.trace()
    profile = calibrate_profile(config.workload, config.bank_capacity)
    if echo:
        echo(f"calibrated service profile: {profile.image_cycles} cyc/img "
             f"({100 * profile.mem_fraction:.0f}% DDR4-bound), "
             f"{config.instances} instance(s), "
             f"{len(trace)} requests ({trace.kind})")
    spolicy = config.effective_policy()
    slo_armed = config.slo_classes is not None
    disruptions = FleetDisruptions(config.instance_faults)
    hedge_ratio = None if spolicy.hedge_factor is None \
        else Fraction(spolicy.hedge_factor).limit_denominator(4096)
    engine = ServeEngine(config.workload, outputs=config.outputs)
    queue = RequestQueue(config.queue_capacity)
    batcher = DynamicBatcher(
        queue, config.policy,
        service_estimate=profile.batch_cycles if slo_armed else None)
    timeline = None
    if config.timeline:
        from repro.obs.serving import ServingTimeline
        timeline = ServingTimeline()
    flight = None
    if config.flight:
        from repro.obs.flight import FlightRecorder
        flight = FlightRecorder()
    stats = [InstanceStats(i) for i in range(config.instances)]
    health = [InstanceHealth(i) for i in range(config.instances)]
    was_down = [False] * config.instances
    idle: list[int] = list(range(config.instances))
    offline: dict[int, Fraction] = {}
    jobs: dict[int, _Job] = {}
    legs: dict[int, list[int]] = {}        # bid -> instances with a leg
    hedged_bids: set[int] = set()
    completed_bids: set[int] = set()
    pending_recovery: dict[int, Fraction] = {}
    recovery_latencies: list[float] = []
    ready: list[tuple[Fraction, Batch]] = []
    outcomes: list[RequestOutcome] = []
    outputs: dict[int, object] = {}
    resubmissions = 0
    requeued = 0
    hedges = hedge_wins = hedge_cancelled = 0
    fail_stop_events = 0
    arrivals = list(trace)
    next_arrival = 0
    now = Fraction(0)

    def mem_rate() -> Fraction:
        if not config.contention:
            return Fraction(1)
        busy = sum(1 for job in jobs.values() if job.in_mem)
        return Fraction(1, busy) if busy > 1 else Fraction(1)

    def usable(instance: int) -> bool:
        """Healthy + powered: may receive a batch right now."""
        return (not disruptions.is_down(instance, now)
                and health[instance].can_dispatch(now))

    def dispatch(batch: Batch, instance: int, hedge: bool = False) -> None:
        batch.attempts += 1
        mem = profile.batch_mem_cycles(batch.size)
        compute = profile.batch_compute_cycles(batch.size)
        fault_at = _fault_threshold(config, batch, mem + compute)
        probe = health[instance].on_dispatch(now)
        job = _Job(batch, instance, mem, compute, fault_at,
                   now, hedge=hedge, probe=probe)
        if flight is not None:
            job.split = [Fraction(0), Fraction(0), Fraction(0)]
            flight.on_dispatch(batch, instance, now, hedge, probe)
        jobs[instance] = job
        legs.setdefault(batch.bid, []).append(instance)
        if timeline is not None:
            timeline.count("dispatches", now)
        if probe:
            if timeline is not None:
                timeline.add_instant("probe", now, instance,
                                     batch=batch.bid)
            if flight is not None:
                flight.on_instant("probe", now, instance, batch=batch.bid)

    def remove_leg(bid: int, instance: int) -> None:
        entries = legs.get(bid)
        if entries and instance in entries:
            entries.remove(instance)
            if not entries:
                del legs[bid]

    def expected_cycles(batch: Batch) -> int:
        return profile.batch_cycles(batch.size)

    def fail_batch(batch: Batch) -> None:
        if flight is not None:
            flight.on_fail(batch, now)
        if timeline is not None:
            timeline.count("batches_failed", now)
        for request in batch.requests:
            outcomes.append(RequestOutcome(
                rid=request.rid, arrival_cycle=request.arrival_cycle,
                batch=batch.bid, instance=-1, done_cycle=float(now),
                latency_cycles=0.0, failed=True, slo=request.slo,
                deadline_cycle=request.deadline_cycle,
                deadline_met=request.deadline_cycle is None))

    def settle() -> None:
        """Process everything due at the current instant."""
        nonlocal next_arrival, hedges
        while (next_arrival < len(arrivals)
               and arrivals[next_arrival].arrival_cycle <= now):
            request = arrivals[next_arrival]
            admitted = queue.push(now, request)
            if timeline is not None:
                timeline.count("arrivals", now)
                if not admitted:
                    timeline.count("drops_queue_full", now)
            if flight is not None:
                flight.on_arrival(request, now, admitted)
            next_arrival += 1
        if slo_armed:
            # Expired: the deadline already passed while queued.
            expired = queue.remove_where(
                now, lambda r: (r.deadline_cycle is not None
                                and r.deadline_cycle < now),
                "deadline_expired")
            # Shed: could not make the SLO even dispatched alone now.
            solo = profile.batch_cycles(1)
            shed = queue.remove_where(
                now, lambda r: (r.deadline_cycle is not None
                                and r.deadline_cycle < now + solo),
                "shed")
            if timeline is not None:
                timeline.count("drops_deadline_expired", now, len(expired))
                timeline.count("drops_shed", now, len(shed))
            if flight is not None:
                for request in expired:
                    flight.on_drop(request, now, "deadline_expired")
                for request in shed:
                    flight.on_drop(request, now, "shed")
        while batcher.ready(now, next_arrival < len(arrivals)):
            batch = batcher.close(now)
            if timeline is not None:
                timeline.count("batches_closed", now)
            if flight is not None:
                flight.on_close(batch, now)
            ready.append((now, batch))
        while any(at <= now for at, _ in ready):
            eligible = [i for i in idle if usable(i)]
            if not eligible:
                break
            index = next(i for i, (at, _) in enumerate(ready) if at <= now)
            _, batch = ready.pop(index)
            instance = eligible[0]
            idle.remove(instance)
            dispatch(batch, instance)
        if hedge_ratio is not None:
            for instance in sorted(jobs):
                job = jobs[instance]
                bid = job.batch.bid
                if (job.hedge or bid in hedged_bids
                        or bid in completed_bids):
                    continue
                if now - job.started < hedge_ratio \
                        * expected_cycles(job.batch):
                    continue
                eligible = [i for i in idle if usable(i)]
                if not eligible:
                    break
                backup = eligible[0]
                idle.remove(backup)
                hedged_bids.add(bid)
                hedges += 1
                dispatch(job.batch, backup, hedge=True)
                if timeline is not None:
                    timeline.count("hedges", now)
                    timeline.add_instant("hedge", now, backup,
                                         batch=bid, primary=instance)
                if flight is not None:
                    flight.on_instant("hedge", now, backup,
                                      batch=bid, primary=instance)
        if timeline is not None:
            timeline.sample(now, len(queue), len(jobs))

    def sync_disruptions() -> None:
        """Apply scripted down/up transitions at the current instant."""
        nonlocal requeued, fail_stop_events
        if not disruptions.armed:
            return
        for instance in range(config.instances):
            down = disruptions.is_down(instance, now)
            if down and not was_down[instance]:
                fail_stop_events += 1
                if timeline is not None:
                    timeline.add_instant("fail-stop", now, instance)
                if flight is not None:
                    flight.on_instant("fail-stop", now, instance)
                if instance in jobs:
                    job = jobs.pop(instance)
                    bid = job.batch.bid
                    stats[instance].busy_cycles += float(now - job.started)
                    stats[instance].requeued += 1
                    remove_leg(bid, instance)
                    if timeline is not None:
                        timeline.add_batch_span(
                            instance,
                            f"batch{bid} x{job.batch.size}",
                            job.started, now, False,
                            attempt=job.batch.attempts, killed=True)
                    if flight is not None:
                        flight.on_attempt_end(bid, instance, now,
                                              "killed", job.split)
                    if bid not in legs and bid not in completed_bids:
                        # Drain-and-requeue at the head of the queue.
                        requeued += 1
                        pending_recovery.setdefault(bid, now)
                        hedged_bids.discard(bid)
                        if timeline is not None:
                            timeline.count("requeues", now)
                        if flight is not None:
                            flight.on_instant("requeue", now, instance,
                                              batch=bid)
                        ready.insert(0, (now, job.batch))
                    idle.append(instance)
                    idle.sort()
            was_down[instance] = down

    def complete(instance: int, job: _Job) -> None:
        nonlocal hedge_wins, hedge_cancelled
        bid = job.batch.bid
        entry = stats[instance]
        entry.batches_completed += 1
        entry.images_completed += job.batch.size
        entry.busy_cycles += float(now - job.started)
        health[instance].on_success(now)
        if job.hedge:
            hedge_wins += 1
            entry.hedge_wins += 1
        remove_leg(bid, instance)
        # First completion wins: cancel any sibling leg exactly now.
        for other in list(legs.get(bid, ())):
            loser = jobs.pop(other)
            stats[other].busy_cycles += float(now - loser.started)
            hedge_cancelled += 1
            remove_leg(bid, other)
            idle.append(other)
            if timeline is not None:
                timeline.add_batch_span(
                    other, f"batch{bid} x{loser.batch.size}",
                    loser.started, now, False,
                    attempt=loser.batch.attempts, cancelled=True)
            if flight is not None:
                flight.on_attempt_end(bid, other, now, "cancelled",
                                      loser.split)
        completed_bids.add(bid)
        if bid in pending_recovery:
            recovery_latencies.append(float(now - pending_recovery.pop(bid)))
        for request in job.batch.requests:
            outputs[request.rid] = engine.run_image(request.image_seed)
            met = (request.deadline_cycle is None
                   or now <= request.deadline_cycle)
            outcomes.append(RequestOutcome(
                rid=request.rid, arrival_cycle=request.arrival_cycle,
                batch=bid, instance=instance,
                done_cycle=float(now),
                latency_cycles=float(now - request.arrival_cycle),
                slo=request.slo, deadline_cycle=request.deadline_cycle,
                deadline_met=met))
        if timeline is not None:
            timeline.count("completions", now, job.batch.size)
            for request in job.batch.requests:
                timeline.observe("latency_cycles",
                                 float(now - request.arrival_cycle))
            timeline.add_batch_span(
                instance, f"batch{bid} x{job.batch.size}",
                job.started, now, True, attempt=job.batch.attempts,
                hedge=job.hedge)
        if flight is not None:
            flight.on_attempt_end(bid, instance, now, "complete",
                                  job.split)
        del jobs[instance]
        idle.append(instance)
        idle.sort()

    def take_fault(instance: int, job: _Job) -> None:
        nonlocal resubmissions
        bid = job.batch.bid
        entry = stats[instance]
        entry.faults += 1
        entry.busy_cycles += float(now - job.started)
        if timeline is not None:
            timeline.count("faults", now)
            timeline.add_batch_span(
                instance, f"batch{bid} x{job.batch.size}",
                job.started, now, False, attempt=job.batch.attempts)
        if flight is not None:
            flight.on_attempt_end(bid, instance, now, "fault", job.split)
        del jobs[instance]
        remove_leg(bid, instance)
        offline[instance] = now + config.drain_cycles
        ejected = health[instance].on_fault(now, spolicy,
                                            config.drain_cycles)
        if ejected:
            entry.ejections += 1
            if timeline is not None:
                timeline.add_instant("eject", now, instance,
                                     after=health[instance]
                                     .consecutive_faults)
            if flight is not None:
                flight.on_instant("eject", now, instance,
                                  after=health[instance]
                                  .consecutive_faults)
        if bid in legs:
            return          # a sibling (hedge) leg carries the batch on
        batch = job.batch
        if batch.attempts > spolicy.batch_resubmits:
            fail_batch(batch)
            return
        resubmissions += 1
        pending_recovery.setdefault(bid, now)
        hedged_bids.discard(bid)
        backoff = spolicy.backoff(batch.attempts - 1, config.seed, bid)
        if timeline is not None:
            timeline.count("resubmissions", now)
        if flight is not None:
            flight.on_backoff(bid, now, now + backoff)
        ready.insert(0, (now + backoff, batch))

    guard = 0
    fleet_dead = False
    while (next_arrival < len(arrivals) or len(queue) or ready or jobs):
        guard += 1
        if guard > 10_000_000:
            raise RuntimeError("serve scheduler failed to converge")
        sync_disruptions()
        settle()
        if not (next_arrival < len(arrivals) or len(queue)
                or ready or jobs):
            break
        candidates: list[Fraction] = []
        if next_arrival < len(arrivals):
            candidates.append(Fraction(
                arrivals[next_arrival].arrival_cycle))
        if len(queue):
            deadline = batcher.deadline()
            if deadline is not None and Fraction(deadline) > now:
                candidates.append(Fraction(deadline))
        for ready_at, _ in ready:
            if ready_at > now:
                candidates.append(ready_at)
        candidates.extend(offline.values())
        for entry in health:
            if entry.probe_at is not None and entry.probe_at > now:
                candidates.append(entry.probe_at)
        script_event = disruptions.next_event_after(now)
        if script_event is not None:
            candidates.append(Fraction(script_event))
        rate = mem_rate()
        derates = {instance: disruptions.derate(instance, now)
                   for instance in jobs}
        for instance, job in jobs.items():
            candidates.append(
                now + job.next_event_dt(rate, derates[instance]))
            if (hedge_ratio is not None and not job.hedge
                    and job.batch.bid not in hedged_bids):
                trigger = job.started + hedge_ratio \
                    * expected_cycles(job.batch)
                if trigger > now:
                    candidates.append(trigger)
        if not candidates:
            # Fleet permanently dead with work still queued: fail it
            # (never silently dropped) and stop the clock honestly.
            fleet_dead = True
            for _, batch in ready:
                fail_batch(batch)
            ready.clear()
            break
        target = min(candidates)
        if target > now:
            dt = target - now
            for instance, job in jobs.items():
                job.advance(dt, rate, derates[instance])
            now = target
        for instance in sorted(offline):
            if offline[instance] <= now:
                del offline[instance]
                idle.append(instance)
                idle.sort()
        sync_disruptions()
        for instance in sorted(jobs):
            if instance not in jobs:
                continue        # cancelled as a losing hedge leg
            job = jobs[instance]
            if job.faulted:
                take_fault(instance, job)
            elif job.done:
                complete(instance, job)

    makespan = float(now)
    digest = output_digest(outputs)
    attribution = None
    if flight is not None:
        flight.finish(now)
        for entry in health:
            if entry.transitions:
                flight.add_breaker_log(entry.index, entry.transitions)
        attribution = flight.attribution(config.clock_mhz)
    unavailable = []
    for entry, h in zip(stats, health):
        down = disruptions.down_cycles(entry.index, now) \
            + h.open_cycles(now)
        entry.unavailable_cycles = float(min(down, now))
        entry.ejections = h.ejections
        entry.probes = h.probes
        unavailable.append(min(down, now))
    if now > 0:
        availability = float(
            1 - sum(unavailable) / (config.instances * now))
    else:
        availability = 1.0
    report = build_report(
        seed=config.seed, instances=config.instances,
        contention=config.contention, traffic_kind=trace.kind,
        clock_mhz=config.clock_mhz,
        workload={
            "in_channels": config.workload.in_channels,
            "hw": config.workload.hw,
            "out_channels": config.workload.out_channels,
            "kernel": config.workload.kernel,
            "macs_nominal": config.workload.macs_nominal,
        },
        profile={
            "image_cycles": profile.image_cycles,
            "compute_cycles": profile.compute_cycles,
            "image_mem_cycles": profile.image_mem_cycles,
            "weight_mem_cycles": profile.weight_mem_cycles,
            "mem_fraction": profile.mem_fraction,
        },
        policy={
            "max_batch": config.policy.max_batch,
            "max_wait_cycles": config.policy.max_wait_cycles,
        },
        serve_policy={
            "batch_resubmits": spolicy.batch_resubmits,
            "backoff_base_cycles": spolicy.backoff_base_cycles,
            "backoff_cap_cycles": spolicy.backoff_cap_cycles,
            "backoff_jitter": spolicy.backoff_jitter,
            "hedge_factor": spolicy.hedge_factor,
            "eject_after": spolicy.eject_after,
            "probe_cooldown_cycles": spolicy.probe_cooldown_cycles,
        },
        offered=len(trace), admitted=queue.admitted,
        dropped=queue.dropped,
        drop_reasons=dict(queue.drop_reasons),
        outcomes=outcomes, trace_requests=arrivals,
        resubmissions=resubmissions, requeued=requeued,
        hedges=hedges, hedge_wins=hedge_wins,
        hedge_cancelled=hedge_cancelled,
        fail_stops=fail_stop_events, fleet_dead=fleet_dead,
        availability=availability,
        recovery_latencies=recovery_latencies,
        makespan_cycles=makespan,
        queue_mean_depth=queue.mean_depth(now if now > 0 else 1),
        queue_max_depth=queue.max_depth,
        batches_formed=batcher.formed,
        batch_size_hist=batcher.size_hist,
        instance_stats=stats, output_digest=digest,
        attribution=attribution, cache=cache_stats())
    if echo:
        echo(f"served {report.completed}/{report.offered} requests in "
             f"{makespan:.0f} cycles "
             f"({report.throughput_img_s:.1f} img/s)")
    return ServeResult(config=config, trace=trace, profile=profile,
                       report=report, outputs=outputs, timeline=timeline,
                       flight=flight)
