"""repro.serve — batched multi-accelerator serving simulator.

Deterministic discrete-event serving on top of the reproduction's
cycle-accurate accelerator model: seeded arrival traffic, a dynamic
batcher (max-batch-size + max-wait-cycles), and a scheduler that runs
batches across N accelerator instances sharing one DDR4 — so
multi-instance throughput is honest, not N× optimistic.  Reports
latency percentiles, img/s, effective GOPS against the paper's 138,
queue depths, and per-instance utilization; integrates with
``repro.obs`` (serving timeline) and ``repro.faults`` (deterministic
batch faults + resubmission).  See ``docs/SERVING.md``.

The resilience layer (:mod:`repro.serve.resilience`) adds per-request
SLO deadlines with deadline-aware shedding and batching, a seeded
retry/hedging :class:`ServePolicy`, per-instance circuit breakers,
and scripted fleet disruptions (fail-stop / degrade / flap) with
drain-and-requeue failover — all byte-deterministic per seed.  Chaos
campaigns over this machinery live in :mod:`repro.faults.serving`
(``repro serve chaos``).  See ``docs/RESILIENCE.md``.
"""

from repro.serve.batcher import Batch, BatchPolicy, DynamicBatcher
from repro.serve.engine import (ServeEngine, ServeWorkload, ServiceProfile,
                                calibrate_profile, output_digest)
from repro.serve.queue import RequestQueue
from repro.serve.report import (PAPER_PEAK_EFFECTIVE_GOPS, InstanceStats,
                                RequestOutcome, ServeReport, build_report,
                                percentile)
from repro.serve.resilience import (BEST_EFFORT, DEFAULT_SLO_CLASSES,
                                    FleetDisruptions, InstanceHealth,
                                    ServePolicy, SloClass,
                                    assign_slo_classes)
from repro.serve.scheduler import (ServeConfig, ServeResult, default_config,
                                   run_serve, smoke_config)
from repro.serve.traffic import (Request, TrafficTrace, burst_trace,
                                 make_trace, poisson_trace, replay_trace)

__all__ = [
    "Batch", "BatchPolicy", "DynamicBatcher",
    "ServeEngine", "ServeWorkload", "ServiceProfile",
    "calibrate_profile", "output_digest",
    "RequestQueue",
    "PAPER_PEAK_EFFECTIVE_GOPS", "InstanceStats", "RequestOutcome",
    "ServeReport", "build_report", "percentile",
    "BEST_EFFORT", "DEFAULT_SLO_CLASSES", "FleetDisruptions",
    "InstanceHealth", "ServePolicy", "SloClass", "assign_slo_classes",
    "ServeConfig", "ServeResult", "default_config", "run_serve",
    "smoke_config",
    "Request", "TrafficTrace", "burst_trace", "make_trace",
    "poisson_trace", "replay_trace",
]
