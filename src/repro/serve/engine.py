"""Execution bridge: the serving layer's accelerator backend.

The serving simulator needs two things from the accelerator model:

* **timing** — what one batch costs on one instance, split into the
  DDR4-bound share (which contends across instances) and the
  compute-bound share (which does not).  :func:`calibrate_profile`
  measures this by running one representative image end-to-end through
  the real cycle-accurate SoC path (DMA staging, instruction issue,
  streaming compute, write-back — the same path ``repro.faults`` and
  ``repro profile`` drive) and splitting the wall cycles by the DMA
  engine's busy-cycle counter.  Nothing here is a guess: the per-image
  cost *is* the simulated cost, and the memory share *is* the measured
  DMA occupancy.
* **functional outputs** — the OFM for each request, bit-identical to
  a sequential single-instance run.  ``outputs="sim"`` executes every
  image on a fresh cycle-accurate accelerator instance;
  ``outputs="model"`` uses the quantized numpy reference, which the
  differential suites pin as bit-identical to the accelerator.  The
  property tests in ``tests/serve`` assert the two backends agree.

Batching economics follow the driver: an unbatched image pays weight
staging + IFM/OFM movement + compute every time (the driver reloads
the packed streams per layer run), while a batch of ``k`` images with
resident weights pays the weight staging once:
``batch(k) = weight_mem + k * (image_mem + compute)``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.core.accelerator import (AcceleratorConfig, AcceleratorInstance,
                                    execute_conv)
from repro.core.packing import PackedLayer, serialize_unit_stream
from repro.hls.sim import Simulator
from repro.obs.cache import KeyedCache
from repro.quant.quantize import conv2d_int
from repro.quant.signmag import saturate_array, shift_round_array

#: Memoizes :func:`calibrate_profile` — one full SoC layer run per
#: distinct (workload, bank_capacity), reused across scheduler sweeps.
_PROFILE_CACHE = KeyedCache("serve.calibrate_profile", maxsize=16)


@dataclass(frozen=True)
class ServeWorkload:
    """The served model: one convolution layer, simulator-scale.

    Kept deliberately small (the cycle-accurate simulator is the cost
    ceiling) but DMA-heavy, which is exactly the regime where shared
    DDR4 makes multi-instance throughput sub-linear.
    """

    in_channels: int = 4
    hw: int = 10               # IFM height/width (valid 3x3 -> hw-2 out)
    out_channels: int = 8
    kernel: int = 3
    shift: int = 2
    apply_relu: bool = True
    weight_seed: int = 7

    @property
    def out_hw(self) -> int:
        return self.hw - self.kernel + 1

    @property
    def macs_nominal(self) -> int:
        """Nominal MAC count of one image (GOPS convention)."""
        return (self.out_channels * self.in_channels
                * self.kernel * self.kernel * self.out_hw * self.out_hw)

    def weights(self) -> np.ndarray:
        rng = np.random.default_rng(self.weight_seed)
        w = rng.integers(-16, 16,
                         size=(self.out_channels, self.in_channels,
                               self.kernel, self.kernel)).astype(np.int8)
        # ~40% pruned: exercises zero-skip and keeps streams realistic.
        w[rng.random(w.shape) >= 0.6] = 0
        return w

    def biases(self) -> np.ndarray:
        rng = np.random.default_rng(self.weight_seed + 1)
        return rng.integers(-64, 64,
                            size=(self.out_channels,)).astype(np.int64)

    def image(self, image_seed: int) -> np.ndarray:
        rng = np.random.default_rng(image_seed)
        return rng.integers(-32, 32,
                            size=(self.in_channels, self.hw, self.hw),
                            dtype=np.int16)


@dataclass(frozen=True)
class ServiceProfile:
    """Measured per-image cost, split by resource (cycles).

    ``image_cycles`` is the full unbatched cost (one driver layer run);
    the three components partition it.  The memory components contend
    for the shared DDR4 when several instances run concurrently; the
    compute component is private to an instance.
    """

    image_cycles: int
    compute_cycles: int
    image_mem_cycles: int
    weight_mem_cycles: int

    def __post_init__(self):
        if min(self.image_cycles, self.compute_cycles,
               self.image_mem_cycles, self.weight_mem_cycles) < 0:
            raise ValueError(f"negative component in {self}")

    @property
    def mem_fraction(self) -> float:
        """DDR4-bound share of one unbatched image."""
        if not self.image_cycles:
            return 0.0
        return (self.image_mem_cycles + self.weight_mem_cycles) \
            / self.image_cycles

    def batch_mem_cycles(self, size: int) -> int:
        """DDR4 work of a ``size``-image batch (weights staged once)."""
        return self.weight_mem_cycles + size * self.image_mem_cycles

    def batch_compute_cycles(self, size: int) -> int:
        return size * self.compute_cycles

    def batch_cycles(self, size: int) -> int:
        """Uncontended wall cycles of one batch."""
        return self.batch_mem_cycles(size) + self.batch_compute_cycles(size)


def calibrate_profile(workload: ServeWorkload,
                      bank_capacity: int = 1 << 14) -> ServiceProfile:
    """Measure one image through the full SoC path and split the cost.

    The wall cycles come from the driver's layer run; the DDR4-bound
    share is the DMA engine's busy-cycle counter over that run, split
    between weight staging and IFM/OFM movement in proportion to the
    values each moves (the engine is store-and-forward, so busy cycles
    scale with values moved).

    Calibration is fully determined by ``(workload, bank_capacity)``
    (fresh SoC, seeded tensors), so results are memoized; hit/miss
    counters surface via ``repro.obs.cache_stats()``.
    """
    return _PROFILE_CACHE.get_or_build(
        (workload, bank_capacity),
        lambda: _calibrate_uncached(workload, bank_capacity))


def _calibrate_uncached(workload: ServeWorkload,
                        bank_capacity: int) -> ServiceProfile:
    from repro.soc.driver import InferenceDriver, SocSystem

    soc = SocSystem(bank_capacity=bank_capacity)
    driver = InferenceDriver(soc)
    packed = PackedLayer.pack(workload.weights())
    handle = driver.load_feature_map(workload.image(0))
    driver.load_packed_weights("serve", packed)
    _, run = driver.run_conv(handle, "serve", packed, workload.biases(),
                             shift=workload.shift,
                             apply_relu=workload.apply_relu)
    mem_busy = soc.dma.stats.busy_cycles
    weight_values = sum(
        int(serialize_unit_stream(packed, unit,
                                  lanes=soc.accel.config.lanes,
                                  group_size=soc.accel.config.lanes).size)
        for unit in range(soc.accel.config.lanes))
    total_values = max(1, run.dma_values)
    weight_mem = round(mem_busy * min(1.0, weight_values / total_values))
    return ServiceProfile(
        image_cycles=run.cycles,
        compute_cycles=max(0, run.cycles - mem_busy),
        image_mem_cycles=mem_busy - weight_mem,
        weight_mem_cycles=weight_mem)


def _golden_conv(image: np.ndarray, weights: np.ndarray,
                 biases: np.ndarray, shift: int,
                 apply_relu: bool) -> np.ndarray:
    """Quantized numpy reference, bit-identical to the accelerator."""
    acc = conv2d_int(image.astype(np.int64), weights)
    acc = acc + np.asarray(biases, dtype=np.int64).reshape(-1, 1, 1)
    out = shift_round_array(acc, shift)
    if apply_relu:
        out = np.maximum(out, 0)
    return saturate_array(out).astype(np.int16)


class ServeEngine:
    """Functional backend: request images in, OFMs (and digests) out."""

    def __init__(self, workload: ServeWorkload | None = None,
                 outputs: str = "model"):
        if outputs not in ("model", "sim"):
            raise ValueError(f"outputs must be 'model' or 'sim', "
                             f"got {outputs!r}")
        self.workload = workload or ServeWorkload()
        self.outputs = outputs
        self._weights = self.workload.weights()
        self._biases = self.workload.biases()
        self._packed = PackedLayer.pack(self._weights)
        self.images_run = 0

    def run_image(self, image_seed: int) -> np.ndarray:
        """Execute one request's image on the configured backend."""
        w = self.workload
        image = w.image(image_seed)
        self.images_run += 1
        if self.outputs == "model":
            return _golden_conv(image, self._weights, self._biases,
                                w.shift, w.apply_relu)
        sim = Simulator(f"serve-img{self.images_run}")
        instance = AcceleratorInstance(
            sim, AcceleratorConfig(bank_capacity=1 << 16))
        ofm, _ = execute_conv(instance, image, self._packed,
                              biases=self._biases, shift=w.shift,
                              apply_relu=w.apply_relu)
        return ofm

    def sequential_reference(self, trace) -> dict[int, np.ndarray]:
        """Every request executed alone, in arrival order.

        The baseline the batched/multi-instance scheduler must match
        bit for bit, whatever batching, striping across instances, or
        fault-triggered resubmission happened along the way.
        """
        return {request.rid: self.run_image(request.image_seed)
                for request in trace}


def output_digest(outputs: dict[int, np.ndarray]) -> str:
    """Order-insensitive digest of per-request outputs (rid order)."""
    blake = hashlib.blake2b(digest_size=16)
    for rid in sorted(outputs):
        blake.update(rid.to_bytes(8, "little"))
        arr = np.ascontiguousarray(outputs[rid])
        blake.update(str(arr.dtype).encode())
        blake.update(str(arr.shape).encode())
        blake.update(arr.tobytes())
    return blake.hexdigest()
