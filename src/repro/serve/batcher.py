"""Dynamic batching: max-batch-size + max-wait-cycles policy.

The standard serving trade-off: larger batches amortize the per-batch
weight staging (the dominant DMA cost of the small layers this
simulator serves — exactly the "weights are reloaded per stripe"
overhead the SoC driver pays when every image is a fresh layer run),
but a request admitted into a forming batch waits for it to close.
The policy closes a batch when either

* ``max_batch`` requests are pending (size trigger), or
* the oldest pending request has waited ``max_wait_cycles``
  (deadline trigger), so a lone request is never stranded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.queue import RequestQueue
from repro.serve.traffic import Request


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs of the dynamic batcher."""

    max_batch: int = 4
    max_wait_cycles: int = 4096

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_cycles < 0:
            raise ValueError("max_wait_cycles must be >= 0")


@dataclass
class Batch:
    """A closed batch on its way to (or through) an accelerator."""

    bid: int
    requests: tuple[Request, ...]
    formed_cycle: int
    attempts: int = 0          # executions started (faults resubmit)

    @property
    def size(self) -> int:
        return len(self.requests)


class DynamicBatcher:
    """Turns the admission queue into a stream of closed batches."""

    def __init__(self, queue: RequestQueue, policy: BatchPolicy):
        self.queue = queue
        self.policy = policy
        self._next_bid = 0
        self.formed = 0
        self.size_hist: dict[int, int] = {}

    def deadline(self) -> int | None:
        """Cycle at which the oldest pending request forces a close."""
        oldest = self.queue.oldest_arrival
        if oldest is None:
            return None
        return oldest + self.policy.max_wait_cycles

    def ready(self, now, more_arrivals: bool) -> bool:
        """Should a batch close at ``now``?

        Size trigger, deadline trigger, or end-of-trace flush (no more
        arrivals will ever come, so waiting longer buys nothing).
        """
        if len(self.queue) == 0:
            return False
        if len(self.queue) >= self.policy.max_batch:
            return True
        deadline = self.deadline()
        if deadline is not None and now >= deadline:
            return True
        return not more_arrivals

    def close(self, now) -> Batch:
        """Close and return the next batch (caller checked ``ready``)."""
        size = min(len(self.queue), self.policy.max_batch)
        if size == 0:
            raise RuntimeError("close() on an empty batcher")
        requests = tuple(self.queue.pop(now) for _ in range(size))
        batch = Batch(bid=self._next_bid, requests=requests,
                      formed_cycle=int(now))
        self._next_bid += 1
        self.formed += 1
        self.size_hist[size] = self.size_hist.get(size, 0) + 1
        return batch
