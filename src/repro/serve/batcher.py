"""Dynamic batching: max-batch-size + max-wait-cycles policy.

The standard serving trade-off: larger batches amortize the per-batch
weight staging (the dominant DMA cost of the small layers this
simulator serves — exactly the "weights are reloaded per stripe"
overhead the SoC driver pays when every image is a fresh layer run),
but a request admitted into a forming batch waits for it to close.
The policy closes a batch when either

* ``max_batch`` requests are pending (size trigger), or
* the oldest pending request has waited ``max_wait_cycles``
  (deadline trigger), so a lone request is never stranded, or
* — when the scheduler supplies a ``service_estimate`` because SLO
  classes are armed — the *tightest member deadline* would be missed
  by waiting any longer (the batch must close early enough that its
  estimated service still fits before the earliest deadline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.serve.queue import RequestQueue
from repro.serve.traffic import Request


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs of the dynamic batcher."""

    max_batch: int = 4
    max_wait_cycles: int = 4096

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_cycles < 0:
            raise ValueError("max_wait_cycles must be >= 0")


@dataclass
class Batch:
    """A closed batch on its way to (or through) an accelerator."""

    bid: int
    requests: tuple[Request, ...]
    formed_cycle: int
    attempts: int = 0          # executions started (faults resubmit)
    #: Tightest member deadline (None when every member is best-effort).
    deadline_cycle: int | None = None
    #: Which trigger closed the batch: ``size`` (max_batch pending),
    #: ``wait`` (oldest member hit max_wait_cycles), ``slo`` (tightest
    #: member deadline forced an early close) or ``flush``
    #: (end-of-trace, no more arrivals coming).
    close_reason: str = "size"

    @property
    def size(self) -> int:
        return len(self.requests)


class DynamicBatcher:
    """Turns the admission queue into a stream of closed batches.

    ``service_estimate`` — optional ``size -> cycles`` callable (the
    scheduler passes the calibrated profile's uncontended batch cost
    when SLO classes are armed) — makes batch formation deadline-aware:
    a pending deadline forces a close while the estimated service can
    still complete before it.  ``None`` keeps the legacy size/wait
    triggers bit-identically.
    """

    def __init__(self, queue: RequestQueue, policy: BatchPolicy,
                 service_estimate: Callable[[int], int] | None = None):
        self.queue = queue
        self.policy = policy
        self.service_estimate = service_estimate
        self._next_bid = 0
        self.formed = 0
        self.size_hist: dict[int, int] = {}
        self._close_reason = "size"     # trigger behind the last ready()

    def deadline(self) -> int | None:
        """Cycle at which the pending requests force a close.

        The oldest request's max-wait trigger, tightened (when a
        service estimate is available) by the earliest member deadline
        minus the estimated service of the batch that would close now.
        """
        oldest = self.queue.oldest_arrival
        if oldest is None:
            return None
        close_at = oldest + self.policy.max_wait_cycles
        if self.service_estimate is not None:
            size = min(len(self.queue), self.policy.max_batch)
            estimate = self.service_estimate(size)
            for request in self.queue:
                if request.deadline_cycle is not None:
                    close_at = min(close_at,
                                   request.deadline_cycle - estimate)
        return close_at

    def ready(self, now, more_arrivals: bool) -> bool:
        """Should a batch close at ``now``?

        Size trigger, deadline trigger (max-wait or tightest member
        SLO deadline), or end-of-trace flush (no more arrivals will
        ever come, so waiting longer buys nothing).
        """
        if len(self.queue) == 0:
            return False
        if len(self.queue) >= self.policy.max_batch:
            self._close_reason = "size"
            return True
        deadline = self.deadline()
        if deadline is not None and now >= deadline:
            wait_close = (self.queue.oldest_arrival
                          + self.policy.max_wait_cycles)
            self._close_reason = "slo" if deadline < wait_close else "wait"
            return True
        if not more_arrivals:
            self._close_reason = "flush"
            return True
        return False

    def close(self, now) -> Batch:
        """Close and return the next batch (caller checked ``ready``)."""
        size = min(len(self.queue), self.policy.max_batch)
        if size == 0:
            raise RuntimeError("close() on an empty batcher")
        requests = tuple(self.queue.pop(now) for _ in range(size))
        deadlines = [r.deadline_cycle for r in requests
                     if r.deadline_cycle is not None]
        batch = Batch(bid=self._next_bid, requests=requests,
                      formed_cycle=int(now),
                      deadline_cycle=min(deadlines) if deadlines else None,
                      close_reason=self._close_reason)
        self._next_bid += 1
        self.formed += 1
        self.size_hist[size] = self.size_hist.get(size, 0) + 1
        return batch
