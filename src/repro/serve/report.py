"""Serving results: latency percentiles, throughput, utilization, SLOs.

Everything the scheduler measured, rendered as text for the CLI and as
a deterministic JSON document for CI artifacts.  Determinism matters:
for a fixed config/seed two runs must produce *byte-identical* JSON
(regression-tested), so floats are rounded at a fixed precision and
all dict keys are emitted sorted.

Schema v2 (``repro.serve/report/v2``) grows the resilience story on
top of v1: a per-reason drop taxonomy (``queue_full`` /
``deadline_expired`` / ``shed``), an ``slo`` section (per-class
attainment + goodput), and a ``health`` section (availability,
ejections/probes, hedges, requeues, recovery-latency percentiles).
Every new section is *always* present — armed-but-idle resilience
must not change a fault-free report byte for byte
(``benchmarks/bench_serve_resilience.py``).

Schema v3 (``repro.serve/report/v3``) adds the observability story: a
``cache`` section (``repro.obs.cache_stats()`` with counters reset at
run start, so it is run-order independent) and an ``attribution``
section — the flight recorder's exact critical-path decomposition
(``repro.obs.flight``), ``null`` unless the run was made with
``ServeConfig(flight=True)``.

The throughput section relates the simulated service to the paper's
headline number: effective GOPS (nominal MACs delivered per second,
the Fig. 8 convention) against the 512-opt peak of 138 effective GOPS
on the pruned network.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any

#: Fig. 8 / Section V headline: 512-opt peak effective GOPS (pruned).
PAPER_PEAK_EFFECTIVE_GOPS = 138.0

#: Rounding applied to every float in the JSON document.
JSON_FLOAT_DECIMALS = 6


def percentile(values, q: float) -> float:
    """Linear-interpolation percentile, matching numpy's default.

    ``numpy.percentile(values, q)`` with the default ``linear`` method;
    reimplemented so the report has no behavioural dependency on the
    numpy version (and works on Fractions).  Validated against numpy in
    ``tests/serve/test_cli_serve.py``.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    items = sorted(float(v) for v in values)
    if not items:
        return 0.0
    position = (len(items) - 1) * q / 100.0
    lo = math.floor(position)
    hi = math.ceil(position)
    if lo == hi:
        return items[lo]
    fraction = position - lo
    return items[lo] + (items[hi] - items[lo]) * fraction


def _round(value: float) -> float:
    return round(float(value), JSON_FLOAT_DECIMALS)


@dataclass(frozen=True)
class RequestOutcome:
    """Per-request accounting (completed or failed)."""

    rid: int
    arrival_cycle: int
    batch: int
    instance: int            # instance that completed it (-1 if failed)
    done_cycle: float        # completion time (exact clock, floated)
    latency_cycles: float    # done - arrival
    failed: bool = False
    slo: str = "best-effort"
    deadline_cycle: int | None = None
    #: Completed at or before the deadline (best-effort always True
    #: when completed; failed requests with a deadline count as missed).
    deadline_met: bool = True


@dataclass
class InstanceStats:
    """One accelerator instance's serving history."""

    index: int
    batches_completed: int = 0
    images_completed: int = 0
    faults: int = 0
    busy_cycles: float = 0.0
    #: In-flight batches drained-and-requeued off this instance when a
    #: scripted fail-stop killed it.
    requeued: int = 0
    #: Circuit-breaker ejections / half-open trial batches.
    ejections: int = 0
    probes: int = 0
    #: Hedged legs on this instance that won the race.
    hedge_wins: int = 0
    #: Cycles this instance was unavailable (scripted down + ejected).
    unavailable_cycles: float = 0.0

    def utilization(self, makespan_cycles: float) -> float:
        if makespan_cycles <= 0:
            return 0.0
        return self.busy_cycles / makespan_cycles


@dataclass
class ServeReport:
    """Aggregated serving metrics, renderable as text and JSON."""

    seed: int
    instances: int
    contention: bool
    traffic_kind: str
    clock_mhz: float
    # workload + calibration echo
    workload: dict[str, Any] = field(default_factory=dict)
    profile: dict[str, Any] = field(default_factory=dict)
    policy: dict[str, Any] = field(default_factory=dict)
    serve_policy: dict[str, Any] = field(default_factory=dict)
    # counts
    offered: int = 0
    admitted: int = 0
    dropped: int = 0
    completed: int = 0
    failed: int = 0
    resubmissions: int = 0
    #: Per-reason drop taxonomy (queue_full/deadline_expired/shed).
    drop_reasons: dict[str, int] = field(default_factory=dict)
    makespan_cycles: float = 0.0
    # latency (cycles over completed requests)
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    latency_mean: float = 0.0
    latency_max: float = 0.0
    # queue + batching
    queue_mean_depth: float = 0.0
    queue_max_depth: int = 0
    batches_formed: int = 0
    batch_size_hist: dict[int, int] = field(default_factory=dict)
    # SLO accounting (per class: offered/completed/met counts)
    slo_by_class: dict[str, dict[str, int]] = field(default_factory=dict)
    #: Completions that met their deadline (== completed when no
    #: deadline-carrying class is in play).
    deadline_met: int = 0
    # resilience / health
    requeued: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    hedge_cancelled: int = 0
    fail_stops: int = 0
    fleet_dead: bool = False
    availability: float = 1.0
    recovery_latencies: list[float] = field(default_factory=list)
    # per-instance
    instance_stats: list[InstanceStats] = field(default_factory=list)
    output_digest: str = ""
    #: Flight-recorder critical-path attribution
    #: (``repro.obs.flight.FlightRecorder.attribution``), ``None``
    #: unless the run was made with ``ServeConfig(flight=True)``.
    attribution: dict[str, Any] | None = None
    #: ``repro.obs.cache_stats()`` snapshot (counters reset per run).
    cache: dict[str, Any] = field(default_factory=dict)

    # -- derived -------------------------------------------------------------

    @property
    def makespan_s(self) -> float:
        return self.makespan_cycles / (self.clock_mhz * 1e6)

    @property
    def throughput_img_s(self) -> float:
        if self.makespan_cycles <= 0:
            return 0.0
        return self.completed / self.makespan_s

    @property
    def goodput_img_s(self) -> float:
        """Deadline-meeting completions per second (== throughput when
        no SLO class is armed)."""
        if self.makespan_cycles <= 0:
            return 0.0
        return self.deadline_met / self.makespan_s

    @property
    def slo_attainment(self) -> float:
        """Fraction of *offered* requests that completed within SLO."""
        if self.offered <= 0:
            return 1.0
        return self.deadline_met / self.offered

    @property
    def effective_gops(self) -> float:
        """Nominal MACs delivered per second (Fig. 8 convention)."""
        macs = self.workload.get("macs_nominal", 0)
        if self.makespan_cycles <= 0:
            return 0.0
        return macs * self.completed / self.makespan_s / 1e9

    @property
    def paper_peak_fraction(self) -> float:
        return self.effective_gops / PAPER_PEAK_EFFECTIVE_GOPS

    def mean_batch_size(self) -> float:
        total = sum(size * n for size, n in self.batch_size_hist.items())
        formed = sum(self.batch_size_hist.values())
        return total / formed if formed else 0.0

    def latency_ms(self, cycles: float) -> float:
        return cycles / (self.clock_mhz * 1e3)

    def recovery_percentile(self, q: float) -> float:
        return percentile(self.recovery_latencies, q)

    # -- rendering -----------------------------------------------------------

    def format(self) -> str:
        w = self.workload
        lines = ["serving report", "=" * 14]
        lines.append(
            f"workload         : conv {w.get('in_channels')}x"
            f"{w.get('hw')}x{w.get('hw')} -> {w.get('out_channels')}ch "
            f"({w.get('macs_nominal')} MACs/img), "
            f"{self.clock_mhz:g} MHz clock")
        lines.append(
            f"service profile  : {self.profile.get('image_cycles')} cyc/img "
            f"(compute {self.profile.get('compute_cycles')}, "
            f"ifm+ofm dma {self.profile.get('image_mem_cycles')}, "
            f"weights dma {self.profile.get('weight_mem_cycles')}; "
            f"mem {100 * self.profile.get('mem_fraction', 0.0):.0f}%)")
        drops = ", ".join(f"{reason} {count}" for reason, count
                          in sorted(self.drop_reasons.items()) if count)
        lines.append(
            f"traffic          : {self.traffic_kind}, seed {self.seed}, "
            f"{self.offered} offered / {self.admitted} admitted / "
            f"{self.dropped} dropped" + (f" ({drops})" if drops else ""))
        lines.append(
            f"fleet            : {self.instances} instance(s), shared-DDR4 "
            f"contention {'on' if self.contention else 'off'}")
        lines.append(
            f"batcher          : max {self.policy.get('max_batch')} / wait "
            f"{self.policy.get('max_wait_cycles')} cyc -> "
            f"{self.batches_formed} batches, mean size "
            f"{self.mean_batch_size():.2f}, "
            f"{self.resubmissions} resubmission(s)")
        lines.append("")
        lines.append(
            f"completed        : {self.completed} img "
            f"({self.failed} failed) in {self.makespan_cycles:.0f} cycles")
        lines.append(
            f"throughput       : {self.throughput_img_s:.1f} img/s, "
            f"{self.effective_gops:.3f} effective GOPS "
            f"({100 * self.paper_peak_fraction:.2f}% of the paper's "
            f"{PAPER_PEAK_EFFECTIVE_GOPS:.0f})")
        lines.append(
            f"latency (cycles) : p50 {self.latency_p50:.0f}  "
            f"p95 {self.latency_p95:.0f}  p99 {self.latency_p99:.0f}  "
            f"mean {self.latency_mean:.0f}  max {self.latency_max:.0f}")
        lines.append(
            f"latency (ms)     : p50 {self.latency_ms(self.latency_p50):.3f}"
            f"  p95 {self.latency_ms(self.latency_p95):.3f}"
            f"  p99 {self.latency_ms(self.latency_p99):.3f}")
        lines.append(
            f"queue depth      : mean {self.queue_mean_depth:.2f}, "
            f"max {self.queue_max_depth}")
        lines.append(
            f"slo              : attainment "
            f"{100 * self.slo_attainment:.1f}% "
            f"({self.deadline_met}/{self.offered} in deadline), "
            f"goodput {self.goodput_img_s:.1f} img/s")
        for name, counts in sorted(self.slo_by_class.items()):
            lines.append(
                f"  class {name:<12}: {counts.get('offered', 0)} offered, "
                f"{counts.get('completed', 0)} completed, "
                f"{counts.get('met', 0)} met")
        lines.append(
            f"health           : availability "
            f"{100 * self.availability:.2f}%, "
            f"{self.fail_stops} fail-stop(s), "
            f"{sum(s.ejections for s in self.instance_stats)} ejection(s), "
            f"{self.requeued} requeued, {self.hedges} hedge(s) "
            f"({self.hedge_wins} won)"
            + (", FLEET DEAD" if self.fleet_dead else ""))
        if self.recovery_latencies:
            lines.append(
                f"recovery (cycles): p50 {self.recovery_percentile(50):.0f}"
                f"  p95 {self.recovery_percentile(95):.0f}"
                f"  p99 {self.recovery_percentile(99):.0f}"
                f"  over {len(self.recovery_latencies)} event(s)")
        lines.append("")
        lines.append(f"{'instance':<10}{'batches':>9}{'images':>8}"
                     f"{'faults':>8}{'busy cyc':>12}{'util':>7}")
        for stats in self.instance_stats:
            lines.append(
                f"acc{stats.index:<7}{stats.batches_completed:>9}"
                f"{stats.images_completed:>8}{stats.faults:>8}"
                f"{stats.busy_cycles:>12.0f}"
                f"{100 * stats.utilization(self.makespan_cycles):>6.0f}%")
        sizes = ", ".join(f"{size}x{n}" for size, n
                          in sorted(self.batch_size_hist.items()))
        lines.append(f"batch sizes      : {sizes or '-'}")
        if self.cache:
            parts = []
            for name, stats in sorted(self.cache.items()):
                parts.append(f"{name} {stats.get('hits', 0)}h/"
                             f"{stats.get('misses', 0)}m")
            lines.append(f"caches           : {', '.join(parts)}")
        lines.append(f"output digest    : {self.output_digest}")
        if self.attribution is not None:
            lines.append("")
            lines.append(self.format_attribution())
        return "\n".join(lines)

    def format_attribution(self) -> str:
        """Critical-path attribution table (flight recorder armed)."""
        a = self.attribution or {}
        n = a.get("requests", 0)
        lines = [f"critical-path attribution ({n} request(s), "
                 f"exact sum: {'yes' if a.get('exact_sum') else 'NO'})"]
        lines.append(f"{'component':<12}{'total cyc':>14}{'mean cyc':>12}"
                     f"{'share':>8}")
        for name, row in a.get("components", {}).items():
            lines.append(f"{name:<12}{row['total_cycles']:>14.0f}"
                         f"{row['mean_cycles']:>12.0f}"
                         f"{100 * row['share']:>7.1f}%")
        reasons = ", ".join(f"{reason} {count}" for reason, count
                            in a.get("batch_close_reasons", {}).items())
        if reasons:
            lines.append(f"batch closes : {reasons}")
        contention = a.get("per_instance_contention_cycles", {})
        if contention:
            shares = ", ".join(f"acc{index} {cycles:.0f}"
                               for index, cycles in contention.items())
            lines.append(f"contention   : {shares} (cycles on the "
                         f"winning attempts)")
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": "repro.serve/report/v3",
            "seed": self.seed,
            "instances": self.instances,
            "contention": self.contention,
            "traffic_kind": self.traffic_kind,
            "clock_mhz": _round(self.clock_mhz),
            "workload": dict(self.workload),
            "profile": {key: (_round(value) if isinstance(value, float)
                              else value)
                        for key, value in self.profile.items()},
            "policy": dict(self.policy),
            "serve_policy": {
                key: (_round(value) if isinstance(value, float) else value)
                for key, value in self.serve_policy.items()},
            "counts": {
                "offered": self.offered,
                "admitted": self.admitted,
                "dropped": self.dropped,
                "drop_reasons": dict(self.drop_reasons),
                "completed": self.completed,
                "failed": self.failed,
                "resubmissions": self.resubmissions,
                "requeued": self.requeued,
            },
            "makespan_cycles": _round(self.makespan_cycles),
            "latency_cycles": {
                "p50": _round(self.latency_p50),
                "p95": _round(self.latency_p95),
                "p99": _round(self.latency_p99),
                "mean": _round(self.latency_mean),
                "max": _round(self.latency_max),
            },
            "latency_ms": {
                "p50": _round(self.latency_ms(self.latency_p50)),
                "p95": _round(self.latency_ms(self.latency_p95)),
                "p99": _round(self.latency_ms(self.latency_p99)),
            },
            "throughput": {
                "img_per_s": _round(self.throughput_img_s),
                "effective_gops": _round(self.effective_gops),
                "paper_peak_gops": _round(PAPER_PEAK_EFFECTIVE_GOPS),
                "paper_peak_fraction": _round(self.paper_peak_fraction),
            },
            "slo": {
                "attainment": _round(self.slo_attainment),
                "deadline_met": self.deadline_met,
                "goodput_img_per_s": _round(self.goodput_img_s),
                "by_class": {name: dict(counts) for name, counts
                             in sorted(self.slo_by_class.items())},
            },
            "health": {
                "availability": _round(self.availability),
                "fail_stops": self.fail_stops,
                "fleet_dead": self.fleet_dead,
                "ejections": sum(s.ejections
                                 for s in self.instance_stats),
                "probes": sum(s.probes for s in self.instance_stats),
                "hedges": self.hedges,
                "hedge_wins": self.hedge_wins,
                "hedge_cancelled": self.hedge_cancelled,
                "recovery_cycles": {
                    "count": len(self.recovery_latencies),
                    "p50": _round(self.recovery_percentile(50)),
                    "p95": _round(self.recovery_percentile(95)),
                    "p99": _round(self.recovery_percentile(99)),
                },
            },
            "queue": {
                "mean_depth": _round(self.queue_mean_depth),
                "max_depth": self.queue_max_depth,
            },
            "batches": {
                "formed": self.batches_formed,
                "mean_size": _round(self.mean_batch_size()),
                "size_hist": {str(size): n for size, n
                              in sorted(self.batch_size_hist.items())},
            },
            "instances_stats": [{
                "index": stats.index,
                "batches_completed": stats.batches_completed,
                "images_completed": stats.images_completed,
                "faults": stats.faults,
                "busy_cycles": _round(stats.busy_cycles),
                "utilization": _round(
                    stats.utilization(self.makespan_cycles)),
                "requeued": stats.requeued,
                "ejections": stats.ejections,
                "probes": stats.probes,
                "hedge_wins": stats.hedge_wins,
                "unavailable_cycles": _round(stats.unavailable_cycles),
            } for stats in self.instance_stats],
            "output_digest": self.output_digest,
            "attribution": self.attribution,
            "cache": {name: dict(stats) for name, stats
                      in sorted(self.cache.items())},
        }

    def json(self, indent: int = 2) -> str:
        return json.dumps(self.to_json(), indent=indent, sort_keys=True)


def build_report(*, seed: int, instances: int, contention: bool,
                 traffic_kind: str, clock_mhz: float,
                 workload: dict, profile: dict, policy: dict,
                 offered: int, admitted: int, dropped: int,
                 outcomes: list[RequestOutcome], resubmissions: int,
                 makespan_cycles: float, queue_mean_depth: float,
                 queue_max_depth: int, batches_formed: int,
                 batch_size_hist: dict[int, int],
                 instance_stats: list[InstanceStats],
                 output_digest: str,
                 serve_policy: dict | None = None,
                 drop_reasons: dict[str, int] | None = None,
                 trace_requests: list | None = None,
                 requeued: int = 0, hedges: int = 0,
                 hedge_wins: int = 0, hedge_cancelled: int = 0,
                 fail_stops: int = 0, fleet_dead: bool = False,
                 availability: float = 1.0,
                 recovery_latencies: list[float] | None = None,
                 attribution: dict | None = None,
                 cache: dict | None = None) -> ServeReport:
    """Assemble the report from the scheduler's raw accounting."""
    completed = [o for o in outcomes if not o.failed]
    latencies = [o.latency_cycles for o in completed]
    deadline_met = sum(1 for o in completed if o.deadline_met)
    slo_by_class: dict[str, dict[str, int]] = {}
    for request in (trace_requests or ()):
        entry = slo_by_class.setdefault(
            request.slo, {"offered": 0, "completed": 0, "met": 0})
        entry["offered"] += 1
    for outcome in completed:
        entry = slo_by_class.setdefault(
            outcome.slo, {"offered": 0, "completed": 0, "met": 0})
        entry["completed"] += 1
        if outcome.deadline_met:
            entry["met"] += 1
    return ServeReport(
        seed=seed, instances=instances, contention=contention,
        traffic_kind=traffic_kind, clock_mhz=clock_mhz,
        workload=workload, profile=profile, policy=policy,
        serve_policy=dict(serve_policy or {}),
        offered=offered, admitted=admitted, dropped=dropped,
        completed=len(completed),
        failed=sum(1 for o in outcomes if o.failed),
        resubmissions=resubmissions,
        drop_reasons=dict(drop_reasons or {}),
        makespan_cycles=makespan_cycles,
        latency_p50=percentile(latencies, 50),
        latency_p95=percentile(latencies, 95),
        latency_p99=percentile(latencies, 99),
        latency_mean=(sum(latencies) / len(latencies)) if latencies else 0.0,
        latency_max=max(latencies) if latencies else 0.0,
        queue_mean_depth=queue_mean_depth,
        queue_max_depth=queue_max_depth,
        batches_formed=batches_formed,
        batch_size_hist=dict(batch_size_hist),
        slo_by_class=slo_by_class, deadline_met=deadline_met,
        requeued=requeued, hedges=hedges, hedge_wins=hedge_wins,
        hedge_cancelled=hedge_cancelled, fail_stops=fail_stops,
        fleet_dead=fleet_dead, availability=availability,
        recovery_latencies=list(recovery_latencies or []),
        instance_stats=instance_stats,
        output_digest=output_digest,
        attribution=attribution, cache=dict(cache or {}))
