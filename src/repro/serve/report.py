"""Serving results: latency percentiles, throughput, utilization.

Everything the scheduler measured, rendered as text for the CLI and as
a deterministic JSON document for CI artifacts.  Determinism matters:
for a fixed config/seed two runs must produce *byte-identical* JSON
(regression-tested), so floats are rounded at a fixed precision and
all dict keys are emitted sorted.

The throughput section relates the simulated service to the paper's
headline number: effective GOPS (nominal MACs delivered per second,
the Fig. 8 convention) against the 512-opt peak of 138 effective GOPS
on the pruned network.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any

#: Fig. 8 / Section V headline: 512-opt peak effective GOPS (pruned).
PAPER_PEAK_EFFECTIVE_GOPS = 138.0

#: Rounding applied to every float in the JSON document.
JSON_FLOAT_DECIMALS = 6


def percentile(values, q: float) -> float:
    """Linear-interpolation percentile, matching numpy's default.

    ``numpy.percentile(values, q)`` with the default ``linear`` method;
    reimplemented so the report has no behavioural dependency on the
    numpy version (and works on Fractions).  Validated against numpy in
    ``tests/serve/test_cli_serve.py``.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    items = sorted(float(v) for v in values)
    if not items:
        return 0.0
    position = (len(items) - 1) * q / 100.0
    lo = math.floor(position)
    hi = math.ceil(position)
    if lo == hi:
        return items[lo]
    fraction = position - lo
    return items[lo] + (items[hi] - items[lo]) * fraction


def _round(value: float) -> float:
    return round(float(value), JSON_FLOAT_DECIMALS)


@dataclass(frozen=True)
class RequestOutcome:
    """Per-request accounting (completed or failed)."""

    rid: int
    arrival_cycle: int
    batch: int
    instance: int            # instance that completed it (-1 if failed)
    done_cycle: float        # completion time (exact clock, floated)
    latency_cycles: float    # done - arrival
    failed: bool = False


@dataclass
class InstanceStats:
    """One accelerator instance's serving history."""

    index: int
    batches_completed: int = 0
    images_completed: int = 0
    faults: int = 0
    busy_cycles: float = 0.0

    def utilization(self, makespan_cycles: float) -> float:
        if makespan_cycles <= 0:
            return 0.0
        return self.busy_cycles / makespan_cycles


@dataclass
class ServeReport:
    """Aggregated serving metrics, renderable as text and JSON."""

    seed: int
    instances: int
    contention: bool
    traffic_kind: str
    clock_mhz: float
    # workload + calibration echo
    workload: dict[str, Any] = field(default_factory=dict)
    profile: dict[str, Any] = field(default_factory=dict)
    policy: dict[str, Any] = field(default_factory=dict)
    # counts
    offered: int = 0
    admitted: int = 0
    dropped: int = 0
    completed: int = 0
    failed: int = 0
    resubmissions: int = 0
    makespan_cycles: float = 0.0
    # latency (cycles over completed requests)
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    latency_mean: float = 0.0
    latency_max: float = 0.0
    # queue + batching
    queue_mean_depth: float = 0.0
    queue_max_depth: int = 0
    batches_formed: int = 0
    batch_size_hist: dict[int, int] = field(default_factory=dict)
    # per-instance
    instance_stats: list[InstanceStats] = field(default_factory=list)
    output_digest: str = ""

    # -- derived -------------------------------------------------------------

    @property
    def makespan_s(self) -> float:
        return self.makespan_cycles / (self.clock_mhz * 1e6)

    @property
    def throughput_img_s(self) -> float:
        if self.makespan_cycles <= 0:
            return 0.0
        return self.completed / self.makespan_s

    @property
    def effective_gops(self) -> float:
        """Nominal MACs delivered per second (Fig. 8 convention)."""
        macs = self.workload.get("macs_nominal", 0)
        if self.makespan_cycles <= 0:
            return 0.0
        return macs * self.completed / self.makespan_s / 1e9

    @property
    def paper_peak_fraction(self) -> float:
        return self.effective_gops / PAPER_PEAK_EFFECTIVE_GOPS

    def mean_batch_size(self) -> float:
        total = sum(size * n for size, n in self.batch_size_hist.items())
        formed = sum(self.batch_size_hist.values())
        return total / formed if formed else 0.0

    def latency_ms(self, cycles: float) -> float:
        return cycles / (self.clock_mhz * 1e3)

    # -- rendering -----------------------------------------------------------

    def format(self) -> str:
        w = self.workload
        lines = ["serving report", "=" * 14]
        lines.append(
            f"workload         : conv {w.get('in_channels')}x"
            f"{w.get('hw')}x{w.get('hw')} -> {w.get('out_channels')}ch "
            f"({w.get('macs_nominal')} MACs/img), "
            f"{self.clock_mhz:g} MHz clock")
        lines.append(
            f"service profile  : {self.profile.get('image_cycles')} cyc/img "
            f"(compute {self.profile.get('compute_cycles')}, "
            f"ifm+ofm dma {self.profile.get('image_mem_cycles')}, "
            f"weights dma {self.profile.get('weight_mem_cycles')}; "
            f"mem {100 * self.profile.get('mem_fraction', 0.0):.0f}%)")
        lines.append(
            f"traffic          : {self.traffic_kind}, seed {self.seed}, "
            f"{self.offered} offered / {self.admitted} admitted / "
            f"{self.dropped} dropped")
        lines.append(
            f"fleet            : {self.instances} instance(s), shared-DDR4 "
            f"contention {'on' if self.contention else 'off'}")
        lines.append(
            f"batcher          : max {self.policy.get('max_batch')} / wait "
            f"{self.policy.get('max_wait_cycles')} cyc -> "
            f"{self.batches_formed} batches, mean size "
            f"{self.mean_batch_size():.2f}, "
            f"{self.resubmissions} resubmission(s)")
        lines.append("")
        lines.append(
            f"completed        : {self.completed} img "
            f"({self.failed} failed) in {self.makespan_cycles:.0f} cycles")
        lines.append(
            f"throughput       : {self.throughput_img_s:.1f} img/s, "
            f"{self.effective_gops:.3f} effective GOPS "
            f"({100 * self.paper_peak_fraction:.2f}% of the paper's "
            f"{PAPER_PEAK_EFFECTIVE_GOPS:.0f})")
        lines.append(
            f"latency (cycles) : p50 {self.latency_p50:.0f}  "
            f"p95 {self.latency_p95:.0f}  p99 {self.latency_p99:.0f}  "
            f"mean {self.latency_mean:.0f}  max {self.latency_max:.0f}")
        lines.append(
            f"latency (ms)     : p50 {self.latency_ms(self.latency_p50):.3f}"
            f"  p95 {self.latency_ms(self.latency_p95):.3f}"
            f"  p99 {self.latency_ms(self.latency_p99):.3f}")
        lines.append(
            f"queue depth      : mean {self.queue_mean_depth:.2f}, "
            f"max {self.queue_max_depth}")
        lines.append("")
        lines.append(f"{'instance':<10}{'batches':>9}{'images':>8}"
                     f"{'faults':>8}{'busy cyc':>12}{'util':>7}")
        for stats in self.instance_stats:
            lines.append(
                f"acc{stats.index:<7}{stats.batches_completed:>9}"
                f"{stats.images_completed:>8}{stats.faults:>8}"
                f"{stats.busy_cycles:>12.0f}"
                f"{100 * stats.utilization(self.makespan_cycles):>6.0f}%")
        sizes = ", ".join(f"{size}x{n}" for size, n
                          in sorted(self.batch_size_hist.items()))
        lines.append(f"batch sizes      : {sizes or '-'}")
        lines.append(f"output digest    : {self.output_digest}")
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": "repro.serve/report/v1",
            "seed": self.seed,
            "instances": self.instances,
            "contention": self.contention,
            "traffic_kind": self.traffic_kind,
            "clock_mhz": _round(self.clock_mhz),
            "workload": dict(self.workload),
            "profile": {key: (_round(value) if isinstance(value, float)
                              else value)
                        for key, value in self.profile.items()},
            "policy": dict(self.policy),
            "counts": {
                "offered": self.offered,
                "admitted": self.admitted,
                "dropped": self.dropped,
                "completed": self.completed,
                "failed": self.failed,
                "resubmissions": self.resubmissions,
            },
            "makespan_cycles": _round(self.makespan_cycles),
            "latency_cycles": {
                "p50": _round(self.latency_p50),
                "p95": _round(self.latency_p95),
                "p99": _round(self.latency_p99),
                "mean": _round(self.latency_mean),
                "max": _round(self.latency_max),
            },
            "latency_ms": {
                "p50": _round(self.latency_ms(self.latency_p50)),
                "p95": _round(self.latency_ms(self.latency_p95)),
                "p99": _round(self.latency_ms(self.latency_p99)),
            },
            "throughput": {
                "img_per_s": _round(self.throughput_img_s),
                "effective_gops": _round(self.effective_gops),
                "paper_peak_gops": _round(PAPER_PEAK_EFFECTIVE_GOPS),
                "paper_peak_fraction": _round(self.paper_peak_fraction),
            },
            "queue": {
                "mean_depth": _round(self.queue_mean_depth),
                "max_depth": self.queue_max_depth,
            },
            "batches": {
                "formed": self.batches_formed,
                "mean_size": _round(self.mean_batch_size()),
                "size_hist": {str(size): n for size, n
                              in sorted(self.batch_size_hist.items())},
            },
            "instances_stats": [{
                "index": stats.index,
                "batches_completed": stats.batches_completed,
                "images_completed": stats.images_completed,
                "faults": stats.faults,
                "busy_cycles": _round(stats.busy_cycles),
                "utilization": _round(
                    stats.utilization(self.makespan_cycles)),
            } for stats in self.instance_stats],
            "output_digest": self.output_digest,
        }

    def json(self, indent: int = 2) -> str:
        return json.dumps(self.to_json(), indent=indent, sort_keys=True)


def build_report(*, seed: int, instances: int, contention: bool,
                 traffic_kind: str, clock_mhz: float,
                 workload: dict, profile: dict, policy: dict,
                 offered: int, admitted: int, dropped: int,
                 outcomes: list[RequestOutcome], resubmissions: int,
                 makespan_cycles: float, queue_mean_depth: float,
                 queue_max_depth: int, batches_formed: int,
                 batch_size_hist: dict[int, int],
                 instance_stats: list[InstanceStats],
                 output_digest: str) -> ServeReport:
    """Assemble the report from the scheduler's raw accounting."""
    completed = [o for o in outcomes if not o.failed]
    latencies = [o.latency_cycles for o in completed]
    return ServeReport(
        seed=seed, instances=instances, contention=contention,
        traffic_kind=traffic_kind, clock_mhz=clock_mhz,
        workload=workload, profile=profile, policy=policy,
        offered=offered, admitted=admitted, dropped=dropped,
        completed=len(completed),
        failed=sum(1 for o in outcomes if o.failed),
        resubmissions=resubmissions,
        makespan_cycles=makespan_cycles,
        latency_p50=percentile(latencies, 50),
        latency_p95=percentile(latencies, 95),
        latency_p99=percentile(latencies, 99),
        latency_mean=(sum(latencies) / len(latencies)) if latencies else 0.0,
        latency_max=max(latencies) if latencies else 0.0,
        queue_mean_depth=queue_mean_depth,
        queue_max_depth=queue_max_depth,
        batches_formed=batches_formed,
        batch_size_hist=dict(batch_size_hist),
        instance_stats=instance_stats,
        output_digest=output_digest)
