"""Admission queue with event-driven depth accounting.

The serving simulator's front door: arrivals are admitted (or dropped,
when a finite ``capacity`` is configured and the queue is full) and the
queue keeps the same occupancy/time integral the observability hub
keeps for hardware FIFOs (:class:`repro.obs.metrics._OccupancyTracker`)
so the report can state mean/max queue depth without sampling.

Drops carry a reason — ``queue_full`` (admission rejected),
``deadline_expired`` (the request's SLO deadline passed while it
queued) or ``shed`` (deadline-aware load shedding: the request could
no longer make its SLO even if dispatched immediately) — surfaced as
``drop_reasons`` and, through the report, as the serving layer's drop
taxonomy.
"""

from __future__ import annotations

from collections import deque
from fractions import Fraction
from typing import Callable

from repro.serve.traffic import Request

#: Every reason a request can be dropped, in pipeline order.
DROP_REASONS = ("queue_full", "deadline_expired", "shed")


class RequestQueue:
    """FIFO of pending requests with depth statistics.

    Timestamps may be :class:`~fractions.Fraction` (the scheduler's
    exact clock); the integral stays exact and is only converted to
    float in the report.  ``capacity=0`` is legal and means "admit
    nothing" (every push is a ``queue_full`` drop) — the degenerate
    end of the admission-control spectrum, useful in tests and drain
    scenarios.
    """

    def __init__(self, capacity: int | None = None):
        if capacity is not None and capacity < 0:
            raise ValueError("capacity must be >= 0 (or None)")
        self.capacity = capacity
        self._items: deque[Request] = deque()
        self._last_time: Fraction = Fraction(0)
        self._integral: Fraction = Fraction(0)
        self.max_depth = 0
        self.admitted = 0
        self.dropped = 0
        self.popped = 0
        self.drop_reasons: dict[str, int] = {r: 0 for r in DROP_REASONS}

    def _advance(self, now) -> None:
        now = Fraction(now)
        if now > self._last_time:
            self._integral += len(self._items) * (now - self._last_time)
            self._last_time = now

    def _drop(self, reason: str) -> None:
        if reason not in self.drop_reasons:
            raise ValueError(f"unknown drop reason {reason!r} "
                             f"(expected one of {DROP_REASONS})")
        self.dropped += 1
        self.drop_reasons[reason] += 1

    def push(self, now, request: Request) -> bool:
        """Admit ``request`` at time ``now``; False means dropped."""
        self._advance(now)
        if self.capacity is not None and len(self._items) >= self.capacity:
            self._drop("queue_full")
            return False
        self._items.append(request)
        self.admitted += 1
        if len(self._items) > self.max_depth:
            self.max_depth = len(self._items)
        return True

    def pop(self, now) -> Request:
        self._advance(now)
        self.popped += 1
        return self._items.popleft()

    def peek(self) -> Request:
        if not self._items:
            raise IndexError("peek() on an empty queue")
        return self._items[0]

    def remove_where(self, now, predicate: Callable[[Request], bool],
                     reason: str) -> list[Request]:
        """Drop every queued request matching ``predicate``.

        Used by the deadline-aware scheduler to expire requests whose
        deadline has passed (``reason="deadline_expired"``) and to shed
        requests that can no longer make their SLO (``reason="shed"``).
        Preserves FIFO order of the survivors and returns the removed
        requests (oldest first) for outcome accounting.
        """
        self._advance(now)
        removed = [r for r in self._items if predicate(r)]
        if removed:
            self._items = deque(r for r in self._items
                                if not predicate(r))
            for _ in removed:
                self._drop(reason)
        return removed

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        """Oldest-first view of the pending requests (read-only)."""
        return iter(self._items)

    @property
    def oldest_arrival(self) -> int | None:
        """Arrival cycle of the longest-waiting request (None if empty)."""
        return self._items[0].arrival_cycle if self._items else None

    def mean_depth(self, now) -> float:
        """Time-averaged depth over ``[0, now]``.

        Over a zero-length window (``now == 0``, e.g. a trace whose
        every event is at cycle 0) the time integral is empty, so the
        mean is defined as the instantaneous depth — exact, and
        consistent with the limit of a shrinking window.
        """
        self._advance(now)
        now = Fraction(now)
        if now <= 0:
            return float(len(self._items))
        return float(self._integral / now)
