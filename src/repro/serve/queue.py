"""Admission queue with event-driven depth accounting.

The serving simulator's front door: arrivals are admitted (or dropped,
when a finite ``capacity`` is configured and the queue is full) and the
queue keeps the same occupancy/time integral the observability hub
keeps for hardware FIFOs (:class:`repro.obs.metrics._OccupancyTracker`)
so the report can state mean/max queue depth without sampling.
"""

from __future__ import annotations

from collections import deque
from fractions import Fraction

from repro.serve.traffic import Request


class RequestQueue:
    """FIFO of pending requests with depth statistics.

    Timestamps may be :class:`~fractions.Fraction` (the scheduler's
    exact clock); the integral stays exact and is only converted to
    float in the report.
    """

    def __init__(self, capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None)")
        self.capacity = capacity
        self._items: deque[Request] = deque()
        self._last_time: Fraction = Fraction(0)
        self._integral: Fraction = Fraction(0)
        self.max_depth = 0
        self.admitted = 0
        self.dropped = 0
        self.popped = 0

    def _advance(self, now) -> None:
        now = Fraction(now)
        if now > self._last_time:
            self._integral += len(self._items) * (now - self._last_time)
            self._last_time = now

    def push(self, now, request: Request) -> bool:
        """Admit ``request`` at time ``now``; False means dropped."""
        self._advance(now)
        if self.capacity is not None and len(self._items) >= self.capacity:
            self.dropped += 1
            return False
        self._items.append(request)
        self.admitted += 1
        if len(self._items) > self.max_depth:
            self.max_depth = len(self._items)
        return True

    def pop(self, now) -> Request:
        self._advance(now)
        self.popped += 1
        return self._items.popleft()

    def peek(self) -> Request:
        return self._items[0]

    def __len__(self) -> int:
        return len(self._items)

    @property
    def oldest_arrival(self) -> int | None:
        """Arrival cycle of the longest-waiting request (None if empty)."""
        return self._items[0].arrival_cycle if self._items else None

    def mean_depth(self, now) -> float:
        """Time-averaged depth over ``[0, now]``."""
        self._advance(now)
        now = Fraction(now)
        if now <= 0:
            return float(len(self._items))
        return float(self._integral / now)
