"""Serving-side resilience: policy, SLO classes, health, disruptions.

The serving simulator's answer to "what happens when something
misbehaves under load".  Four pieces, all deterministic per seed:

* :class:`ServePolicy` — the serving-layer knobs that used to live
  (awkwardly) on the SoC driver's ``ResiliencePolicy``: bounded
  resubmission with exponential back-off and *deterministic* jitter,
  optional hedged re-dispatch, and the circuit-breaker thresholds.
* :class:`SloClass` + :func:`assign_slo_classes` — traffic classes
  that stamp every request with a completion deadline; the admission
  queue and batcher become deadline-aware, and the report gains
  SLO-attainment and goodput columns.
* :class:`InstanceHealth` — a per-instance circuit breaker: ``K``
  consecutive batch faults eject the instance (OPEN); after a
  cool-down it accepts exactly one half-open trial batch, whose
  outcome either closes the breaker or re-ejects.
* :class:`FleetDisruptions` — the scheduler-side view of a seeded
  instance-fault script (:class:`repro.faults.serving.InstanceFault`):
  fail-stop windows, flapping, and service-rate derating, normalized
  into per-instance down/derate intervals whose boundaries become
  discrete-event candidates (so rates are constant between events and
  the exact-Fraction clock stays exact).

Nothing here consumes global RNG state: every stochastic choice is a
:func:`repro.faults.hooks.prf` draw keyed on explicit integers, so a
chaos run is byte-reproducible across processes and CI machines.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from fractions import Fraction
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.faults.hooks import prf, stable_id

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.soc.driver import ResiliencePolicy

#: PRF stream keys, disjoint from repro.faults' own streams.
_SLO_KEY = stable_id("serve.slo_class")
_JITTER_KEY = stable_id("serve.backoff_jitter")

#: Circuit-breaker states (:class:`InstanceHealth`).
BREAKER_CLOSED = "closed"        # healthy, dispatchable
BREAKER_OPEN = "open"            # ejected, waiting out the cool-down
BREAKER_HALF_OPEN = "half-open"  # one trial batch in flight


@dataclass(frozen=True)
class ServePolicy:
    """Serving-layer resilience knobs (split out of the SoC driver).

    ``repro.soc.driver.ResiliencePolicy`` keeps a deprecated
    ``batch_resubmits`` field as a compatibility alias; configs that
    only set that keep working via :meth:`from_resilience`.  The
    defaults arm the retry path and the circuit breaker but leave
    hedging off; an armed-but-idle policy is guaranteed not to change
    a fault-free run (``benchmarks/bench_serve_resilience.py``).
    """

    #: Resubmissions per batch after a fault (then its requests fail).
    batch_resubmits: int = 2
    #: First resubmission back-off (doubles per attempt, capped).
    backoff_base_cycles: int = 32
    backoff_cap_cycles: int = 1024
    #: Deterministic jitter: each back-off is scaled by a seeded PRF
    #: draw in ``[1 - jitter, 1 + jitter]``.  0.0 = the exact legacy
    #: ``ResiliencePolicy.backoff`` schedule.
    backoff_jitter: float = 0.0
    #: Hedged re-dispatch: when a batch has been running longer than
    #: ``hedge_factor x`` its uncontended service estimate and a
    #: healthy instance is idle, launch a second copy; first completion
    #: wins and the loser is cancelled at that exact instant.  ``None``
    #: disables hedging.
    hedge_factor: float | None = None
    #: Circuit breaker: eject an instance after this many *consecutive*
    #: batch faults (0 disables the breaker).
    eject_after: int = 3
    #: Cool-down before an ejected instance accepts a half-open trial.
    probe_cooldown_cycles: int = 2048

    def __post_init__(self):
        if self.batch_resubmits < 0:
            raise ValueError("batch_resubmits must be >= 0")
        if self.backoff_base_cycles < 0 or self.backoff_cap_cycles < 0:
            raise ValueError("back-off cycles must be >= 0")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be in [0, 1]")
        if self.hedge_factor is not None and self.hedge_factor <= 0:
            raise ValueError("hedge_factor must be positive (or None)")
        if self.eject_after < 0:
            raise ValueError("eject_after must be >= 0 (0 = breaker off)")
        if self.probe_cooldown_cycles < 0:
            raise ValueError("probe_cooldown_cycles must be >= 0")

    def backoff(self, attempt: int, seed: int = 0, *keys: int) -> int:
        """Back-off for resubmission ``attempt`` (0-based), jittered.

        The jitter draw is a pure function of ``(seed, keys, attempt)``
        so two runs of the same config produce the same schedule.
        """
        base = min(self.backoff_base_cycles << attempt,
                   self.backoff_cap_cycles)
        if self.backoff_jitter <= 0.0 or base == 0:
            return base
        draw = prf(seed, _JITTER_KEY, *keys, attempt)
        scale = 1.0 + self.backoff_jitter * (2.0 * draw - 1.0)
        return max(0, round(base * scale))

    @classmethod
    def from_resilience(cls, policy: "ResiliencePolicy") -> "ServePolicy":
        """Adapt a driver ``ResiliencePolicy`` (deprecation alias).

        Carries over the serving-relevant knobs (``batch_resubmits``
        and the back-off schedule) and keeps every new mechanism off,
        reproducing the pre-split scheduler behaviour exactly.
        """
        return cls(batch_resubmits=policy.batch_resubmits,
                   backoff_base_cycles=policy.backoff_base_cycles,
                   backoff_cap_cycles=policy.backoff_cap_cycles,
                   backoff_jitter=0.0, hedge_factor=None, eject_after=0)


# -- SLO classes and deadlines -------------------------------------------------------


@dataclass(frozen=True)
class SloClass:
    """One traffic class: a name, a deadline, and a traffic share.

    ``deadline_cycles=None`` means best-effort (no deadline: the
    request can never be shed or expire, and always counts as meeting
    its SLO).  ``weight`` is the relative share of traffic assigned to
    this class by :func:`assign_slo_classes`.
    """

    name: str
    deadline_cycles: int | None = None
    weight: float = 1.0

    def __post_init__(self):
        if not self.name:
            raise ValueError("SLO class needs a name")
        if self.deadline_cycles is not None and self.deadline_cycles <= 0:
            raise ValueError("deadline_cycles must be positive (or None)")
        if self.weight <= 0:
            raise ValueError("weight must be positive")


#: The implicit class of every request when no SLO mix is configured.
BEST_EFFORT = SloClass("best-effort", None)

#: A representative interactive/batch mix for chaos scenarios.
DEFAULT_SLO_CLASSES = (SloClass("interactive", 60_000, weight=1.0),
                       SloClass("batch", 400_000, weight=1.0))


def assign_slo_classes(trace, classes: Sequence[SloClass], seed: int):
    """Stamp every request of ``trace`` with a class and deadline.

    The class of request ``rid`` is a weighted deterministic PRF draw
    keyed on ``(seed, rid)`` — independent of arrival timing, so the
    same rid gets the same class across traffic kinds.  Returns a new
    :class:`~repro.serve.traffic.TrafficTrace` of the same kind.
    """
    from repro.serve.traffic import TrafficTrace
    if not classes:
        raise ValueError("need at least one SLO class")
    total = sum(c.weight for c in classes)
    stamped = []
    for request in trace:
        draw = prf(seed, _SLO_KEY, request.rid) * total
        acc = 0.0
        chosen = classes[-1]
        for cls in classes:
            acc += cls.weight
            if draw < acc:
                chosen = cls
                break
        deadline = None if chosen.deadline_cycles is None \
            else request.arrival_cycle + chosen.deadline_cycles
        stamped.append(replace(request, slo=chosen.name,
                               deadline_cycle=deadline))
    return TrafficTrace(trace.kind, tuple(stamped))


# -- per-instance health (circuit breaker) -------------------------------------------


@dataclass
class InstanceHealth:
    """Circuit-breaker state machine for one accelerator instance.

    CLOSED (healthy) --K consecutive faults--> OPEN (ejected)
    OPEN --cool-down elapsed, one batch dispatched--> HALF_OPEN (trial)
    HALF_OPEN --trial completes--> CLOSED / --trial faults--> OPEN
    """

    index: int
    state: str = BREAKER_CLOSED
    consecutive_faults: int = 0
    probe_at: Fraction | None = None
    ejections: int = 0
    probes: int = 0
    #: (open_at, closed_at_or_None) windows, for availability math.
    open_spans: list = None
    #: Every breaker state change as ``(state, cycle)``, in order —
    #: the flight recorder renders these as trace instants.
    transitions: list = None

    def __post_init__(self):
        if self.open_spans is None:
            self.open_spans = []
        if self.transitions is None:
            self.transitions = []

    def can_dispatch(self, now: Fraction) -> bool:
        """May the scheduler place a batch on this instance at ``now``?"""
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            return self.probe_at is not None and now >= self.probe_at
        return False                          # HALF_OPEN: trial in flight

    def on_dispatch(self, now: Fraction) -> bool:
        """Record a dispatch; True if this batch is a half-open trial."""
        if self.state == BREAKER_OPEN:
            self.state = BREAKER_HALF_OPEN
            self.transitions.append((BREAKER_HALF_OPEN, now))
            self.probes += 1
            return True
        return False

    def on_fault(self, now: Fraction, policy: ServePolicy,
                 drain_cycles: int) -> bool:
        """Record a batch fault; True if the instance was ejected."""
        self.consecutive_faults += 1
        tripped = (self.state == BREAKER_HALF_OPEN
                   or (policy.eject_after > 0
                       and self.consecutive_faults >= policy.eject_after))
        if tripped:
            self.state = BREAKER_OPEN
            self.transitions.append((BREAKER_OPEN, now))
            self.ejections += 1
            self.probe_at = (now + drain_cycles
                             + policy.probe_cooldown_cycles)
            self.open_spans.append([now, None])
        return tripped

    def on_success(self, now: Fraction) -> None:
        """A batch completed cleanly: close the breaker."""
        self.consecutive_faults = 0
        if self.state != BREAKER_CLOSED:
            self.state = BREAKER_CLOSED
            self.transitions.append((BREAKER_CLOSED, now))
            self.probe_at = None
            if self.open_spans and self.open_spans[-1][1] is None:
                self.open_spans[-1][1] = now

    def open_cycles(self, makespan: Fraction) -> Fraction:
        """Total ejected time over ``[0, makespan]`` (exact)."""
        total = Fraction(0)
        for start, end in self.open_spans:
            stop = makespan if end is None else min(end, makespan)
            if stop > start:
                total += stop - start
        return total


# -- fleet disruptions (instance-fault scripts) --------------------------------------


class FleetDisruptions:
    """Scheduler-side view of an instance-fault script.

    Normalizes :class:`repro.faults.serving.InstanceFault` events into
    per-instance *down* intervals (fail-stop, flap off-phases) and
    *derate* intervals (slow-replica clock derating), and exposes the
    sorted transition cycles so the discrete-event loop can stop at
    every boundary.  An empty script costs nothing: every query hits
    the empty-intervals fast path.
    """

    def __init__(self, faults: Iterable = ()):
        self._down: dict[int, list[tuple[int, int | None]]] = {}
        self._derate: dict[int, list[tuple[int, int, Fraction]]] = {}
        events: set[int] = set()
        for fault in faults:
            if fault.kind == "fail_stop":
                self._down.setdefault(fault.instance, []).append(
                    (fault.at_cycle, fault.until_cycle))
                events.add(fault.at_cycle)
                if fault.until_cycle is not None:
                    events.add(fault.until_cycle)
            elif fault.kind == "degrade":
                factor = Fraction(fault.factor).limit_denominator(1024)
                if factor <= 1:
                    raise ValueError("degrade factor must be > 1")
                self._derate.setdefault(fault.instance, []).append(
                    (fault.at_cycle, fault.until_cycle, factor))
                events.update((fault.at_cycle, fault.until_cycle))
            elif fault.kind == "flap":
                # Expand the flap window into alternating down phases
                # (down first — the fault starts by taking it out).
                cycle = fault.at_cycle
                while cycle < fault.until_cycle:
                    end = min(cycle + fault.period_cycles,
                              fault.until_cycle)
                    self._down.setdefault(fault.instance, []).append(
                        (cycle, end))
                    events.update((cycle, end))
                    cycle += 2 * fault.period_cycles
            else:
                raise ValueError(f"unknown instance-fault kind "
                                 f"{fault.kind!r}")
        self._events = sorted(events)
        self.fail_stops = sum(len(spans) for spans in self._down.values())

    @property
    def armed(self) -> bool:
        return bool(self._down or self._derate)

    def is_down(self, instance: int, now) -> bool:
        """Is ``instance`` scripted dead/offline at ``now``?"""
        for start, end in self._down.get(instance, ()):
            if start <= now and (end is None or now < end):
                return True
        return False

    def derate(self, instance: int, now) -> Fraction:
        """Service-rate divisor for ``instance`` at ``now`` (>= 1)."""
        worst = Fraction(1)
        for start, end, factor in self._derate.get(instance, ()):
            if start <= now < end and factor > worst:
                worst = factor
        return worst

    def next_event_after(self, now) -> int | None:
        """Earliest scripted transition strictly after ``now``."""
        for cycle in self._events:
            if cycle > now:
                return cycle
        return None

    def down_cycles(self, instance: int, makespan: Fraction) -> Fraction:
        """Scripted down time of ``instance`` over ``[0, makespan]``."""
        total = Fraction(0)
        for start, end in self._down.get(instance, ()):
            stop = makespan if end is None else min(Fraction(end), makespan)
            if stop > start:
                total += stop - Fraction(start)
        return total
