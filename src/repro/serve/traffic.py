"""Seeded arrival processes for the serving simulator.

The serving layer's clock is the accelerator fabric cycle, so arrival
traces are integer cycle stamps.  Three generators cover the usual
evaluation regimes:

* :func:`poisson_trace` — memoryless arrivals at a mean rate, the
  open-loop traffic model used throughout the serving literature;
* :func:`burst_trace` — an on/off process (dense bursts separated by
  idle gaps) that exercises queue growth and batch formation;
* :func:`replay_trace` — explicit inter-arrival gaps, for replaying a
  recorded trace or hand-building a worst case in tests.

Everything is driven by :class:`numpy.random.Generator` seeded from the
config, so a trace is a pure function of ``(kind, parameters, seed)``
and two runs with the same seed are identical request for request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Request:
    """One inference request entering the serving layer.

    ``image_seed`` determines the request's input tensor (the engine
    generates it deterministically), so a trace fully specifies the
    workload without carrying arrays around.  ``slo``/``deadline_cycle``
    are stamped by :func:`repro.serve.resilience.assign_slo_classes`
    when an SLO mix is configured; the defaults are best-effort (no
    deadline, so the request can never be shed or expire).
    """

    rid: int
    arrival_cycle: int
    image_seed: int
    slo: str = "best-effort"
    deadline_cycle: int | None = None

    def __post_init__(self):
        if self.rid < 0 or self.arrival_cycle < 0:
            raise ValueError(f"bad request {self}")
        if self.deadline_cycle is not None \
                and self.deadline_cycle < self.arrival_cycle:
            raise ValueError(f"deadline before arrival in {self}")


@dataclass(frozen=True)
class TrafficTrace:
    """An arrival trace: requests sorted by arrival cycle."""

    kind: str
    requests: tuple[Request, ...]

    def __post_init__(self):
        cycles = [r.arrival_cycle for r in self.requests]
        if cycles != sorted(cycles):
            raise ValueError("trace must be sorted by arrival cycle")

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    @property
    def span_cycles(self) -> int:
        """Cycles from the first to the last arrival."""
        if not self.requests:
            return 0
        return (self.requests[-1].arrival_cycle
                - self.requests[0].arrival_cycle)

    def interarrivals(self) -> list[int]:
        cycles = [r.arrival_cycle for r in self.requests]
        return [b - a for a, b in zip(cycles, cycles[1:])]


def _make_requests(gaps: Sequence[int], seed: int,
                   first_cycle: int = 0) -> tuple[Request, ...]:
    """Gaps -> cumulative arrivals, with per-request image seeds."""
    rng = np.random.default_rng(seed ^ 0x5EED)
    requests = []
    cycle = first_cycle
    for rid, gap in enumerate(gaps):
        if gap < 0:
            raise ValueError(f"negative inter-arrival gap {gap}")
        cycle += int(gap)
        requests.append(Request(rid=rid, arrival_cycle=cycle,
                                image_seed=int(rng.integers(1 << 30))))
    return tuple(requests)


def poisson_trace(count: int, mean_interarrival_cycles: float,
                  seed: int = 0) -> TrafficTrace:
    """Poisson arrivals: exponential gaps, rounded to whole cycles."""
    if count < 0:
        raise ValueError("count must be >= 0")
    if mean_interarrival_cycles <= 0:
        raise ValueError("mean inter-arrival must be positive")
    rng = np.random.default_rng(seed)
    gaps = np.rint(rng.exponential(mean_interarrival_cycles,
                                   size=count)).astype(np.int64)
    return TrafficTrace("poisson", _make_requests(gaps.tolist(), seed))


def burst_trace(bursts: int, burst_size: int, gap_cycles: int,
                intra_gap_cycles: int = 1, seed: int = 0) -> TrafficTrace:
    """On/off arrivals: ``bursts`` groups of ``burst_size`` requests.

    Requests inside a burst arrive ``intra_gap_cycles`` apart; bursts
    are separated by ``gap_cycles`` of silence.
    """
    if bursts < 0 or burst_size < 1:
        raise ValueError("need bursts >= 0 and burst_size >= 1")
    gaps: list[int] = []
    for b in range(bursts):
        for i in range(burst_size):
            if b == 0 and i == 0:
                gaps.append(0)
            elif i == 0:
                gaps.append(gap_cycles)
            else:
                gaps.append(intra_gap_cycles)
    return TrafficTrace("burst", _make_requests(gaps, seed))


def replay_trace(gaps: Sequence[int], seed: int = 0) -> TrafficTrace:
    """Explicit inter-arrival gaps (first gap is the start offset)."""
    return TrafficTrace("replay", _make_requests(list(gaps), seed))


def make_trace(kind: str, seed: int = 0, *, count: int = 32,
               mean_interarrival_cycles: float = 4096.0,
               bursts: int = 4, burst_size: int = 8,
               gap_cycles: int = 20_000,
               gaps: Sequence[int] | None = None) -> TrafficTrace:
    """Config-level factory: resolve a trace spec by ``kind``."""
    if kind == "poisson":
        return poisson_trace(count, mean_interarrival_cycles, seed)
    if kind == "burst":
        return burst_trace(bursts, burst_size, gap_cycles, seed=seed)
    if kind == "replay":
        if gaps is None:
            raise ValueError("replay trace needs explicit gaps")
        return replay_trace(gaps, seed)
    raise ValueError(f"unknown traffic kind {kind!r} "
                     f"(expected poisson/burst/replay)")
