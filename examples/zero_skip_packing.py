#!/usr/bin/env python3
"""Zero-weight skipping: the packed format and what it buys.

Walks through the offline packing step (Section III-B), shows the byte
stream a data-staging unit loads into scratchpad, and sweeps sparsity
on the cycle-accurate accelerator to expose both the speedup and its
architectural ceiling: four IFM tile preloads per weight tile bound the
gain at 9/4 = 2.25x for 3x3 kernels ((16-4)/16 = 75% for full tiles).

Run:  python examples/zero_skip_packing.py
"""

import numpy as np

from repro.core import (AcceleratorConfig, AcceleratorInstance, PackedLayer,
                        execute_conv, serialize_unit_stream)
from repro.hls import Simulator
from repro.prune import group_imbalance, prune_magnitude


def show_packing():
    print("=== The packed weight format ===")
    weights = np.zeros((1, 1, 3, 3), dtype=np.int64)
    weights[0, 0] = [[50, 0, -3], [0, 0, 0], [7, 0, 127]]
    packed = PackedLayer.pack(weights)
    print("kernel:")
    print(weights[0, 0])
    print("packed entries (intra-tile offset, weight):")
    for entry in packed.tile_entries(0, 0):
        ky, kx = divmod(entry.offset, 4)
        print(f"  offset {entry.offset:2d} (row {ky}, col {kx}) "
              f"weight {entry.weight:4d}")
    stream = serialize_unit_stream(packed, unit=0)
    print(f"unit-0 scratchpad stream ({stream.size} bytes): "
          f"{list(stream[:11])} ...")


def sparsity_sweep():
    print("\n=== Sparsity sweep on the cycle-accurate accelerator ===")
    rng = np.random.default_rng(1)
    ifm = rng.integers(-30, 31, size=(8, 12, 12))
    dense = rng.integers(-40, 41, size=(8, 8, 3, 3)).astype(float)
    dense[dense == 0] = 1.0

    baseline_cycles = None
    print(f"{'keep':>6}{'nnz/tile':>10}{'imbalance':>11}{'cycles':>9}"
          f"{'speedup':>9}")
    for keep in (1.0, 0.8, 0.6, 0.4, 0.2, 0.1):
        pruned = prune_magnitude(dense, keep).weights.astype(np.int64)
        packed = PackedLayer.pack(pruned)
        sim = Simulator(f"keep{keep}")
        accelerator = AcceleratorInstance(
            sim, AcceleratorConfig(bank_capacity=1 << 14))
        _, cycles = execute_conv(accelerator, ifm, packed, shift=0)
        if baseline_cycles is None:
            baseline_cycles = cycles
        nnz_mean = packed.nnz_matrix().mean()
        imbalance = group_imbalance(pruned)
        print(f"{keep:>6.1f}{nnz_mean:>10.2f}{imbalance:>11.2f}"
              f"{cycles:>9}{baseline_cycles / cycles:>8.2f}x")
    print("\nceiling: 3x3 kernels cannot beat 9/4 = 2.25x (four IFM tile "
          "preloads per weight tile share one SRAM port)")


def main():
    show_packing()
    sparsity_sweep()


if __name__ == "__main__":
    main()
