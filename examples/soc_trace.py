#!/usr/bin/env python3
"""End-to-end SoC run with a full system trace (Fig. 1).

Runs a small CNN through the complete system — ARM host issuing encoded
instructions over the Avalon CSR bus, DMA staging tensors between DDR4
and the four SRAM banks, the 20-kernel accelerator computing, the FC
tail in ARM software — and prints the per-layer statistics plus the
first slice of the bus/DMA/instruction trace.

Run:  python examples/soc_trace.py
"""

import numpy as np

from repro.nn import (ConvLayer, FCLayer, FlattenLayer, InputLayer,
                      MaxPoolLayer, Network, PadLayer, ReluLayer, Shape,
                      SoftmaxLayer, generate_image, generate_weights)
from repro.quant import quantize_network, run_quantized
from repro.soc import InferenceDriver, SocSystem


def build_network():
    return Network("demo", [
        InputLayer("input", Shape(3, 12, 12)),
        PadLayer("pad1", pad=1),
        ConvLayer("conv1", in_channels=3, out_channels=8, kernel=3, pad=0),
        ReluLayer("relu1"),
        PadLayer("pad2", pad=1),
        ConvLayer("conv2", in_channels=8, out_channels=8, kernel=3, pad=0),
        ReluLayer("relu2"),
        MaxPoolLayer("pool", size=2, stride=2),
        FlattenLayer("flatten"),
        FCLayer("fc", in_features=8 * 6 * 6, out_features=10),
        SoftmaxLayer("prob"),
    ])


def main():
    net = build_network()
    weights, biases = generate_weights(net, seed=1)
    image = generate_image((3, 12, 12), seed=2)
    model = quantize_network(net, weights, biases, image)

    soc = SocSystem(bank_capacity=1 << 14)
    driver = InferenceDriver(soc)
    probs, runs = driver.run_network(net, model, image)

    reference = run_quantized(net, model, image)
    exact = np.allclose(probs, reference)
    print(f"inference result: class {int(probs.argmax())} "
          f"(p={float(probs.max()):.3f}); bit-exact with golden model: "
          f"{exact}")

    print(f"\n{'layer':<10}{'kind':<9}{'fabric cycles':>14}"
          f"{'DMA values':>12}{'out shape':>14}")
    for run in runs:
        print(f"{run.name:<10}{run.kind:<9}{run.cycles:>14}"
              f"{run.dma_values:>12}{str(run.out_shape):>14}")

    print(f"\nARM: {soc.host.csr_accesses} CSR accesses, "
          f"{soc.host.arm_software_cycles} software cycles "
          f"(reorder + FC tail)")
    print(f"DMA: {soc.dma.stats.transfers} transfers, "
          f"{soc.dma.stats.values_moved} values, "
          f"{soc.dma.stats.busy_cycles} busy cycles")
    print(f"bus traffic: {soc.bus.traffic()}")

    print("\ntrace (first 24 events):")
    print(soc.trace.format(limit=24))


if __name__ == "__main__":
    main()
