#!/usr/bin/env python3
"""The complete workflow: train-side prune/retrain, then deploy.

This is the paper's end-to-end story in one script (Sections I, IV-B):

1. start from a "trained" float network (the teacher);
2. prune it hard (zero-skipping wants zeros), losing some accuracy;
3. fine-tune with masked SGD — the Caffe retraining step — so the
   pruned weights stay zero but accuracy recovers;
4. quantize to 8-bit magnitude+sign and pack the non-zero weights;
5. run a layer on the cycle-accurate accelerator: bit-exact against
   the golden model, and faster than the dense version by the
   zero-skipping margin.

Run:  python examples/prune_retrain_deploy.py
"""

import numpy as np

from repro.core import (AcceleratorConfig, AcceleratorInstance, PackedLayer,
                        execute_conv)
from repro.hls import Simulator
from repro.nn import (ConvLayer, FCLayer, FlattenLayer, InputLayer,
                      MaxPoolLayer, Network, PadLayer, ReluLayer, Shape,
                      SoftmaxLayer, generate_image, generate_weights)
from repro.prune import prune_magnitude
from repro.quant import quantize_network, run_quantized
from repro.train import agreement, finetune, make_teacher_dataset


def build_network():
    return Network("deploy-net", [
        InputLayer("input", Shape(3, 12, 12)),
        PadLayer("pad1", pad=1),
        ConvLayer("conv1", in_channels=3, out_channels=8, kernel=3, pad=0),
        ReluLayer("relu1"),
        MaxPoolLayer("pool1", size=2, stride=2),
        FlattenLayer("flatten"),
        FCLayer("fc", in_features=8 * 6 * 6, out_features=6),
        SoftmaxLayer("prob"),
    ])


def main():
    net = build_network()
    teacher_w, teacher_b = generate_weights(net, seed=7)
    samples = make_teacher_dataset(net, teacher_w, teacher_b, count=16,
                                   image_shape=(3, 12, 12), seed=70)
    print("=== 1. teacher network ===")
    print(f"teacher agreement with itself: "
          f"{agreement(net, teacher_w, teacher_b, samples):.2f}")

    print("\n=== 2. magnitude pruning (keep 30%) ===")
    masks, pruned_w = {}, {}
    for name, tensor in teacher_w.items():
        result = prune_magnitude(tensor, keep_fraction=0.30)
        pruned_w[name] = result.weights
        masks[name] = result.mask
    before = agreement(net, pruned_w, teacher_b, samples)
    print(f"agreement after pruning: {before:.2f}")

    print("\n=== 3. masked fine-tuning (the Caffe retraining step) ===")
    trained = finetune(net, pruned_w, teacher_b, samples, masks=masks,
                       learning_rate=0.01, epochs=8)
    after = agreement(net, trained.weights, trained.biases, samples)
    still_sparse = all(np.all(trained.weights[n][~m] == 0.0)
                       for n, m in masks.items())
    print(f"agreement after retraining: {after:.2f} "
          f"(loss {trained.initial_loss:.3f} -> {trained.final_loss:.3f}; "
          f"pruned weights still zero: {still_sparse})")

    print("\n=== 4. quantize to 8-bit magnitude+sign ===")
    calibration = generate_image((3, 12, 12), seed=71)
    model = quantize_network(net, trained.weights, trained.biases,
                             calibration)
    op = model.ops["conv1"]
    packed = PackedLayer.pack(op.weights_q)
    print(f"conv1 packed: {packed.total_nonzeros} non-zeros "
          f"({100 * packed.density:.0f}% density)")

    print("\n=== 5. deploy on the cycle-accurate accelerator ===")
    image = generate_image((3, 12, 12), seed=72)
    collected = {}
    run_quantized(net, model, image, collect=collected)
    padded_in = np.pad(model.input_params.quantize(image),
                       ((0, 0), (1, 1), (1, 1)))
    sim = Simulator("deploy")
    accelerator = AcceleratorInstance(
        sim, AcceleratorConfig(bank_capacity=1 << 14))
    ofm, sparse_cycles = execute_conv(accelerator, padded_in, packed,
                                      biases=op.bias_q, shift=op.shift,
                                      apply_relu=True)
    exact = np.array_equal(ofm, collected["relu1"])
    dense_weights = np.where(op.weights_q == 0, 1, op.weights_q)
    sim2 = Simulator("dense")
    dense_inst = AcceleratorInstance(
        sim2, AcceleratorConfig(bank_capacity=1 << 14))
    _, dense_cycles = execute_conv(dense_inst, padded_in,
                                   PackedLayer.pack(dense_weights),
                                   biases=op.bias_q, shift=op.shift,
                                   apply_relu=True)
    print(f"conv1 on the accelerator: bit-exact={exact}, "
          f"{sparse_cycles} cycles vs {dense_cycles} dense "
          f"(zero-skip x{dense_cycles / sparse_cycles:.2f})")


if __name__ == "__main__":
    main()
