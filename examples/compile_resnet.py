#!/usr/bin/env python3
"""Compile a residual CNN to an accelerator program and verify it.

Walks the full graph-compiler pipeline on a small residual network
(skip connections are what the legacy linear driver cannot schedule):

1. build + quantize a `cifar_resnet` from the zoo;
2. `compile_graph` — topological scheduling with ReLU fusion,
   liveness-based DDR4 placement, stripe planning, static
   DMA/instruction emission;
3. disassemble the encoded stream and re-assemble it byte-exactly;
4. replay the program on the cycle-accurate SoC and bit-compare
   against the pure-numpy quantized golden model.

Run:  python examples/compile_resnet.py
"""

from repro.compiler import (assemble, compile_graph, disassemble,
                            golden_check, program_words)
from repro.nn import build_cifar_resnet, generate_image, generate_weights
from repro.quant import quantize_network


def main():
    net = build_cifar_resnet(widths=(4, 8), input_hw=16)
    weights, biases = generate_weights(net, seed=0)
    image = generate_image(net.layers[0].shape.as_tuple(), seed=0)
    model = quantize_network(net, weights, biases, image)

    program = compile_graph(net, model)
    print(program.listing())
    print()

    listing = disassemble(program)
    words = program_words(program)
    print(f"encoded stream: {len(words)} words "
          f"({4 * len(words)} bytes)")
    print(f"assembler round-trip byte-exact: "
          f"{assemble(listing) == words}")

    skip = program.placement("conv_stem")
    print(f"residual skip tensor 'conv_stem' resident at DDR4 "
          f"[{skip.addr}, {skip.addr + skip.values}) across its block")
    print()

    check = golden_check(net, model, image, program=program)
    print(f"cycle-accurate SoC vs golden model: {check}")
    print("first instructions of the stream:")
    for line in listing.splitlines()[:8]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
