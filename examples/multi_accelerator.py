#!/usr/bin/env python3
"""The 512-opt pattern: two accelerator instances on separate stripes.

Section IV-D: the mid-sized SX660 fits two instances of the Fig. 3
accelerator, each working concurrently on separate stripes of the
feature maps, for 512 MACs/cycle total. This example builds both
instances inside one cycle simulator, splits a convolution into two
stripes (with the 3x3 halo rows), runs them concurrently, stitches the
OFM and compares wall-clock cycles against a single instance.

Run:  python examples/multi_accelerator.py
"""

import numpy as np

from repro.core import (AcceleratorConfig, AcceleratorInstance, PackedLayer,
                        execute_concurrent, execute_conv, prepare_conv)
from repro.hls import Simulator


def main():
    rng = np.random.default_rng(0)
    ifm = rng.integers(-30, 31, size=(8, 34, 14))   # pre-padded input
    weights = rng.integers(-30, 31, size=(8, 8, 3, 3))
    weights[rng.random(weights.shape) >= 0.5] = 0
    packed = PackedLayer.pack(weights)

    # Single instance, whole layer ("256-opt" style).
    solo_sim = Simulator("solo")
    solo = AcceleratorInstance(
        solo_sim, AcceleratorConfig(bank_capacity=1 << 14), name="solo")
    whole, solo_cycles = execute_conv(solo, ifm, packed, shift=2)
    print(f"single instance: {solo_cycles} cycles for "
          f"{whole.shape} OFM")

    # Two instances in one simulator, each on one stripe ("512-opt").
    sim = Simulator("dual")
    inst_a = AcceleratorInstance(
        sim, AcceleratorConfig(bank_capacity=1 << 14), name="inst_a")
    inst_b = AcceleratorInstance(
        sim, AcceleratorConfig(bank_capacity=1 << 14), name="inst_b")
    print(f"dual system: {len(sim.kernels)} streaming kernels "
          f"(2 x 20), {len(sim.fifos)} FIFOs")

    out_rows = ifm.shape[1] - 2
    split = (out_rows // 2 // 4) * 4          # tile-aligned stripe edge
    top = ifm[:, :split + 2, :]               # +2 halo rows for 3x3
    bottom = ifm[:, split:, :]
    setup_a = prepare_conv(inst_a, top, packed, shift=2)
    setup_b = prepare_conv(inst_b, bottom, packed, shift=2)
    wall = execute_concurrent([setup_a, setup_b])

    stitched = np.concatenate([setup_a.read_ofm(), setup_b.read_ofm()],
                              axis=1)
    assert np.array_equal(stitched, whole), "stripe stitching broke!"
    print(f"dual instances: {wall} wall cycles "
          f"(speedup x{solo_cycles / wall:.2f}; stitched OFM bit-exact)")
    print("paper: 512-opt = 2 instances, 512 MACs/cycle, clocked 120 MHz "
          "(vs 150 for one instance) -> 1.6x net speedup")


if __name__ == "__main__":
    main()
