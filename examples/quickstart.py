#!/usr/bin/env python3
"""Quickstart: run one convolution layer on the cycle-accurate accelerator.

Builds the 20-kernel streaming accelerator (Fig. 3 of the paper), packs
a sparse quantized weight tensor offline (zero-weight skipping), runs a
convolution, and checks the result bit-for-bit against the integer
golden model — then prints the cycle count and the HLS-style report.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (AcceleratorConfig, AcceleratorInstance, PackedLayer,
                        execute_conv)
from repro.hls import Simulator
from repro.quant import conv2d_int, saturate_array, shift_round_array

def main():
    rng = np.random.default_rng(42)

    # A small conv layer: 8 input channels, 8 output channels, 12x12.
    ifm = rng.integers(-40, 41, size=(8, 12, 12))
    weights = rng.integers(-40, 41, size=(8, 8, 3, 3))
    weights[rng.random(weights.shape) >= 0.5] = 0   # ~50% pruned
    biases = rng.integers(-100, 101, size=8)

    # Offline packing: non-zero weights + intra-tile offsets.
    packed = PackedLayer.pack(weights)
    print(f"packed weights: {packed.total_nonzeros} non-zeros "
          f"({100 * packed.density:.0f}% density)")

    # Build one accelerator instance: 4 lanes x 5 streaming kernels.
    sim = Simulator("quickstart")
    accelerator = AcceleratorInstance(
        sim, AcceleratorConfig(bank_capacity=1 << 14))
    print(f"accelerator: {len(sim.kernels)} streaming kernels, "
          f"{len(sim.fifos)} FIFO queues")

    # Execute convolution with requantization shift 2 and ReLU.
    ofm, cycles = execute_conv(accelerator, ifm, packed, biases=biases,
                               shift=2, apply_relu=True)

    # Golden model: integer conv, bias, shift-round, ReLU, saturate.
    acc = conv2d_int(ifm, weights) + biases[:, None, None]
    want = saturate_array(
        np.maximum(shift_round_array(acc, 2), 0)).astype(np.int16)

    assert np.array_equal(ofm, want), "accelerator does not match!"
    macs = 8 * 10 * 10 * 8 * 9
    print(f"output {ofm.shape}: bit-exact with the golden model")
    print(f"cycles: {cycles}  "
          f"({macs / cycles:.0f} effective MACs/cycle of 256 peak)")

    print("\nHLS report (first lines):")
    report = accelerator.hls_report().format_table()
    print("\n".join(report.splitlines()[:8]))


if __name__ == "__main__":
    main()
