#!/usr/bin/env python3
"""Debugging a streaming design: waveforms, stalls, bitwidths.

The paper's central development claim is that hardware design and
debugging can proceed *in software* because the multi-threaded C
behaves like the synthesized hardware (Section IV-A). This example
shows that workflow on the accelerator model itself:

1. attach a waveform recorder and run a convolution;
2. read the timeline to find which kernels stall and on what;
3. get the HLS-style report (utilization per kernel);
4. run bitwidth analysis on live accumulator values — the automated
   minimization pass of paper ref [10].

Run:  python examples/pipeline_debug.py
"""

import numpy as np

from repro.core import (AcceleratorConfig, AcceleratorInstance, PackedLayer,
                        execute_conv)
from repro.hls import BitwidthAnalyzer, Simulator, WaveformRecorder
from repro.quant import conv2d_int


def main():
    rng = np.random.default_rng(0)
    ifm = rng.integers(-40, 41, size=(6, 10, 10))
    weights = rng.integers(-40, 41, size=(6, 6, 3, 3))
    weights[rng.random(weights.shape) >= 0.5] = 0

    sim = Simulator("debug")
    accelerator = AcceleratorInstance(
        sim, AcceleratorConfig(bank_capacity=1 << 14), name="acc")
    recorder = WaveformRecorder(sim, window=400)
    _, cycles = execute_conv(accelerator, ifm, PackedLayer.pack(weights),
                             shift=2)
    print(f"convolution finished in {cycles} cycles\n")

    lane0 = [f"acc.{unit}0" for unit in
             ("staging", "conv", "accum", "padpool", "writeback")]
    print(recorder.render(kernels=lane0, first=8, width=60))

    print("\nstall analysis (fraction of cycles stalled):")
    for name in lane0:
        print(f"  {name:<18} {100 * recorder.stall_fraction(name):5.1f}%")
    busiest = max(accelerator.writeback_qs,
                  key=lambda q: q.stats.max_occupancy)
    print(f"deepest writeback queue: {busiest.name} "
          f"(peak {busiest.stats.max_occupancy}/{busiest.depth})")

    print("\nbitwidth analysis of live values (paper ref [10]):")
    analyzer = BitwidthAnalyzer()
    accumulators = conv2d_int(ifm, weights)
    for value in accumulators.reshape(-1):
        analyzer.record("ofm_accumulator", int(value))
    for value in weights.reshape(-1):
        analyzer.record("weight", int(value))
    for signal in analyzer.signals():
        span = analyzer.range_of(signal)
        print(f"  {signal:<18} range [{span.lo}, {span.hi}] -> "
              f"{analyzer.width(signal)} bits")
    print(f"  register bits saved vs naive 32-bit: "
          f"{analyzer.savings_vs(32)}")


if __name__ == "__main__":
    main()
