#!/usr/bin/env python3
"""Architecture exploration from "software and constraint changes alone".

Section V: "A unique advantage of HLS is that one can synthesize
multiple architecture variants from software and constraint changes
alone." This example walks the four paper variants — plus a GT1150
scale-out sketch — through the full model stack: area, achieved clock,
power and VGG-16 performance, reproducing the performance/area
trade-off discussion.

Run:  python examples/architecture_exploration.py
"""

from repro.area import ARRIA10_GT1150, variant_area
from repro.core import ALL_VARIANTS, AcceleratorVariant
from repro.hls import achieved_fmax_mhz, routing_succeeds
from repro.perf import evaluate_vgg16
from repro.power import variant_power


def explore_paper_variants():
    print("Variant exploration on the Arria 10 SX660")
    print(f"{'variant':<12}{'ALM':>7}{'DSP':>6}{'RAM':>6}{'clock':>9}"
          f"{'power':>9}{'mean GOPS':>11}{'GOPS/W':>8}")
    for variant in ALL_VARIANTS:
        area = variant_area(variant)
        clock = achieved_fmax_mhz(variant.constraints, area.alm_utilization)
        power = variant_power(variant)
        ev = evaluate_vgg16(variant, pruned=True, seed=0)
        print(f"{variant.name:<12}"
              f"{100 * area.alm_utilization:>6.0f}%"
              f"{100 * area.dsp_utilization:>5.0f}%"
              f"{100 * area.ram_utilization:>5.0f}%"
              f"{clock:>6.0f}MHz"
              f"{power.fpga_mw / 1000:>8.2f}W"
              f"{ev.mean_gops:>11.1f}"
              f"{power.gops_per_watt(ev.mean_gops):>8.1f}")


def explore_clock_targets():
    print("\nClock-constraint sweep for the 512-opt floorplan "
          "(why the paper stops at 120 MHz):")
    from repro.core import VARIANT_512_OPT
    utilization = variant_area(VARIANT_512_OPT).alm_utilization
    for target in (100, 110, 120, 130, 140, 150):
        constraints = VARIANT_512_OPT.constraints.with_target_mhz(target)
        ok = routing_succeeds(constraints, utilization)
        achieved = achieved_fmax_mhz(constraints, utilization)
        status = "routes" if ok else "FAILS (congestion)"
        print(f"  target {target:>3} MHz -> {status:<20} "
              f"achieved {achieved:5.1f} MHz")


def explore_gt1150():
    print("\nScale-out sketch on the GT1150 (Section V: 'nearly double "
          "the capacity... software changes alone'):")
    quad = AcceleratorVariant(
        name="1024-opt", macs_per_cycle=1024, instances=4, lanes=4,
        performance_optimized=True, target_clock_mhz=150.0,
        clock_mhz=0.0)  # to be determined by the model
    area = variant_area(quad, device=ARRIA10_GT1150)
    clock = achieved_fmax_mhz(quad.constraints, min(1.0,
                                                    area.alm_utilization))
    print(f"  4 instances: ALM {100 * area.alm_utilization:.0f}% of "
          f"GT1150, modelled clock {clock:.0f} MHz, "
          f"peak {1024 * clock / 1000:.0f} GOPS")


def explore_design_space():
    print("\nDesign-space sweep (lanes x instances x bank size), Pareto "
          "frontier on (GOPS, power, area):")
    from repro.perf import explore, pareto_frontier, vgg16_model_layers
    layers = vgg16_model_layers(pruned=False, seed=0)
    points = explore(layers)
    frontier = {p.name for p in pareto_frontier(points)}
    print(f"  {'design':<18}{'clock':>8}{'ALM':>6}{'power':>8}"
          f"{'GOPS':>7}{'GOPS/W':>8}  frontier")
    for point in sorted(points, key=lambda p: p.mean_gops):
        mark = "*" if point.name in frontier else ""
        print(f"  {point.name:<18}{point.clock_mhz:>5.0f}MHz"
              f"{100 * point.alm_utilization:>5.0f}%"
              f"{point.fpga_power_w:>7.2f}W{point.mean_gops:>7.1f}"
              f"{point.gops_per_watt:>8.1f}  {mark}")


def main():
    explore_paper_variants()
    explore_clock_targets()
    explore_gt1150()
    explore_design_space()


if __name__ == "__main__":
    main()
