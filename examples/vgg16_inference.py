#!/usr/bin/env python3
"""VGG-16 inference: functional (scaled) + performance (full size).

Part 1 runs a scaled-down VGG-16 (32x32 input) through the complete
quantized pipeline — prune, quantize, reference integer inference — and
shows the 8-bit model's agreement with float.

Part 2 applies the validated analytic cycle model to the full 224x224
VGG-16 on the paper's 512-opt accelerator and prints the per-layer
GOPS/efficiency table behind Figs. 7 and 8.

Run:  python examples/vgg16_inference.py
"""

import numpy as np

from repro.core import VARIANT_512_OPT
from repro.nn import build_vgg16, generate_image, generate_weights, run_network
from repro.perf import evaluate_vgg16
from repro.prune import VGG16_PAPER_KEEP, pruned_weights
from repro.quant import quantize_network, run_quantized


def functional_demo():
    print("=== Part 1: quantized VGG-16 (32x32), float vs 8-bit ===")
    net = build_vgg16(input_hw=32)
    weights, biases = generate_weights(net, seed=0)
    weights = pruned_weights(weights, VGG16_PAPER_KEEP)
    image = generate_image((3, 32, 32), seed=0)
    model = quantize_network(net, weights, biases, image)

    sparsity = model.conv_sparsity()
    print(f"conv sparsity after prune+quantize: "
          f"{min(sparsity.values()):.0%} .. {max(sparsity.values()):.0%}")

    # Synthetic weights yield near-uniform logits (no trained margins),
    # so the robust fidelity metric is the probability-vector error and
    # whether the float top-1 stays in the quantized top-5.
    top5_hits = 0
    max_err = 0.0
    trials = 5
    for seed in range(trials):
        test_image = generate_image((3, 32, 32), seed=100 + seed)
        float_probs = run_network(net, weights, test_image,
                                  biases).reshape(-1)
        quant_probs = run_quantized(net, model, test_image).reshape(-1)
        max_err = max(max_err, float(np.abs(float_probs
                                            - quant_probs).max()))
        top5 = np.argsort(quant_probs)[-5:]
        top5_hits += int(float_probs.argmax() in top5)
    print(f"probability error (max abs over {trials} images): "
          f"{max_err:.2e}")
    print(f"float top-1 inside quantized top-5: {top5_hits}/{trials} "
          f"(paper: accuracy within 2% of float on ImageNet)")


def performance_demo():
    print("\n=== Part 2: full VGG-16 on 512-opt (cycle model) ===")
    for pruned in (False, True):
        ev = evaluate_vgg16(VARIANT_512_OPT, pruned=pruned, seed=0)
        label = "pruned  " if pruned else "unpruned"
        print(f"\n{label}: mean {ev.mean_gops:.1f} GOPS, best layer "
              f"{ev.best_gops:.1f}, peak effective "
              f"{ev.peak_effective_gops:.1f}")
        print(f"{'layer':<10}{'GOPS':>8}{'efficiency':>12}{'ms':>8}")
        total_ms = 0.0
        for layer in ev.layers:
            total_ms += 1000 * layer.time_s
            print(f"{layer.name:<10}{layer.gops:>8.1f}"
                  f"{layer.efficiency:>11.2f}{1000 * layer.time_s:>8.2f}")
        print(f"conv stack total: {total_ms:.1f} ms/image "
              f"({1000 / total_ms:.1f} fps)")
    print("\npaper 512-opt: 39.5/61 GOPS unpruned, 53.3/138 pruned "
          "(avg/peak)")


def main():
    functional_demo()
    performance_demo()


if __name__ == "__main__":
    main()
